"""Serving determinism: outputs are a pure function of the traffic seed.

The contract (mirroring the worker-invariance of ``simulate_ber`` /
``sweep_ber``): with fixed-seed traffic, every session's LLR stream and
trigger timeline are identical regardless of

* micro-batch width (``max_batch`` — who gets coalesced with whom),
* queue depth (how backpressure paces the producer),
* retrain worker count (0 = inline reference, N threads = background),
* which *other* sessions exist in the engine.

Batching shares only the kernels' distance stage (rows bit-identical on the
default tier) and a retraining session is never served by stale centroids,
so none of these knobs may change a single bit.
"""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.channels.factories import AWGNFactory, CompositeFactory, PhaseOffsetFactory
from repro.extraction import HybridDemapper
from repro.extraction.monitor import PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.modulation import qam_constellation
from repro.serving import (
    CodedFrameConfig,
    EngineConfig,
    ServingEngine,
    SessionConfig,
    SteadyChannel,
    SteppedChannel,
    build_fleet,
    generate_traffic,
    run_load,
)

SIGMA2 = sigma2_from_snr(8.0, 4)
FC = FrameConfig(pilot_symbols=16, payload_symbols=48)
N_SESSIONS = 6
N_FRAMES = 10
OFFSET = np.pi / 4


class RotatePolicy:
    """Deterministic-in-rng retrain stand-in: rotate centroids by the true
    offset plus an rng-drawn jitter (so a worker-scheduling bug that reused
    or reordered job generators would change the output)."""

    def __init__(self, qam):
        self.qam = qam

    def __call__(self, rng):
        angle = OFFSET + rng.normal(scale=1e-3)
        return HybridDemapper(
            constellation=type(self.qam)(points=self.qam.points * np.exp(1j * angle)),
            sigma2=SIGMA2,
        )


def make_traffic(qam, session_ids, *, jump=True, seed=17):
    """Deterministic per-session traffic; half the fleet sees a phase jump."""
    chan_clean = SteadyChannel(AWGNFactory(8.0, 4))
    chan_jump = SteppedChannel(
        AWGNFactory(8.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(8.0, 4))),
        step_seq=4,
    )
    rng = np.random.default_rng(seed)
    traffic = {}
    for i, sid in enumerate(session_ids):
        (srng,) = rng.spawn(1)
        chan = chan_jump if (jump and i % 2 == 0) else chan_clean
        traffic[sid] = generate_traffic(qam, FC, N_FRAMES, chan, srng)
    return traffic


def serve(qam, *, max_batch, queue_depth, retrain_workers, with_policy=True):
    """One full serving run; returns (per-session LLR streams, timelines)."""
    llrs: dict[str, list[np.ndarray]] = {}
    engine = ServingEngine(config=EngineConfig(
        max_batch=max_batch,
        retrain_workers=retrain_workers,
        on_frame=lambda s, f, block, rep: llrs.setdefault(s.session_id, []).append(
            block.copy()
        ),
    ))
    sessions = build_fleet(
        engine,
        N_SESSIONS,
        HybridDemapper(constellation=qam, sigma2=SIGMA2),
        monitor_factory=lambda: PilotBERMonitor(0.12, window=2, cooldown=2),
        config=SessionConfig(frame=FC, queue_depth=queue_depth),
        retrain_factory=(lambda i: RotatePolicy(qam)) if with_policy else None,
        seed=99,
    )
    with engine:
        run_load(engine, make_traffic(qam, [s.session_id for s in sessions]))
    timelines = {
        s.session_id: (tuple(s.stats.trigger_seqs), s.stats.retrains) for s in sessions
    }
    return llrs, timelines


@pytest.fixture(scope="module")
def qam16():
    return qam_constellation(16)


@pytest.fixture(scope="module")
def reference(qam16):
    """Inline-worker, single-frame-batches run — the sequential reference."""
    return serve(qam16, max_batch=1, queue_depth=1, retrain_workers=0)


def assert_identical(run, reference):
    llrs, timelines = run
    ref_llrs, ref_timelines = reference
    assert timelines == ref_timelines
    assert set(llrs) == set(ref_llrs)
    for sid in ref_llrs:
        assert len(llrs[sid]) == len(ref_llrs[sid]) == N_FRAMES
        for got, ref in zip(llrs[sid], ref_llrs[sid]):
            assert np.array_equal(got, ref)


class TestServingDeterminism:
    def test_triggers_actually_fire(self, reference):
        """Sanity: the scenario exercises the adaptation path at all."""
        _, timelines = reference
        fired = [sid for sid, (seqs, _) in timelines.items() if seqs]
        assert len(fired) == N_SESSIONS // 2  # the jump half

    @pytest.mark.parametrize("max_batch", [2, 3, 64])
    def test_invariant_to_micro_batch_width(self, qam16, reference, max_batch):
        assert_identical(
            serve(qam16, max_batch=max_batch, queue_depth=1, retrain_workers=0),
            reference,
        )

    @pytest.mark.parametrize("queue_depth", [2, 4, 16])
    def test_invariant_to_queue_depth(self, qam16, reference, queue_depth):
        assert_identical(
            serve(qam16, max_batch=64, queue_depth=queue_depth, retrain_workers=0),
            reference,
        )

    @pytest.mark.parametrize("retrain_workers", [1, 2, 4])
    def test_invariant_to_worker_threads(self, qam16, reference, retrain_workers):
        assert_identical(
            serve(
                qam16, max_batch=64, queue_depth=4, retrain_workers=retrain_workers
            ),
            reference,
        )

    def test_repeated_run_is_identical(self, qam16, reference):
        assert_identical(
            serve(qam16, max_batch=1, queue_depth=1, retrain_workers=0), reference
        )

    def test_unrelated_sessions_do_not_perturb(self, qam16):
        """A session's outputs don't depend on who else shares the engine."""

        def run_with(extra_sessions):
            llrs = {}
            engine = ServingEngine(config=EngineConfig(
                max_batch=64,
                on_frame=lambda s, f, block, rep: llrs.setdefault(
                    s.session_id, []
                ).append(block.copy()),
            ))
            hybrid = HybridDemapper(constellation=qam16, sigma2=SIGMA2)
            sessions = build_fleet(
                engine,
                1 + extra_sessions,
                hybrid,
                monitor_factory=lambda: PilotBERMonitor(0.12, window=2),
                config=SessionConfig(frame=FC, queue_depth=4),
                seed=5,
            )
            # the watched session's traffic is the same in both runs
            traffic = {
                sessions[0].session_id: generate_traffic(
                    qam16, FC, 4, SteadyChannel(AWGNFactory(8.0, 4)), 123
                )
            }
            for s in sessions[1:]:
                traffic[s.session_id] = generate_traffic(
                    qam16, FC, 4, SteadyChannel(AWGNFactory(2.0, 4)), 321
                )
            run_load(engine, traffic)
            return llrs[sessions[0].session_id]

        alone = run_with(0)
        crowded = run_with(7)
        assert len(alone) == len(crowded) == 4
        for a, c in zip(alone, crowded):
            assert np.array_equal(a, c)


# -- coded traffic ------------------------------------------------------------

#: fast-firing CRC monitor so the payload-aware trigger path is exercised
CODED = CodedFrameConfig(crc_fail_window=2, crc_fail_cooldown=2)


def serve_coded(qam, *, max_batch, queue_depth, retrain_workers):
    """One coded serving run; returns per-session decoded timelines.

    The timeline pins every decoded-bit-derived output: per-frame
    ``(seq, crc_ok, post_fec_ber)`` reports (post-FEC BER is an exact
    function of the decoded bits vs the transmitted info bits), the
    CRC-failure sequence numbers, FER, and the trigger timeline.
    """
    reports: dict[str, list] = {}
    engine = ServingEngine(config=EngineConfig(
        max_batch=max_batch,
        retrain_workers=retrain_workers,
        on_frame=lambda s, f, block, rep: reports.setdefault(
            s.session_id, []
        ).append((rep.seq, rep.crc_ok, rep.post_fec_ber)),
    ))
    sessions = build_fleet(
        engine,
        N_SESSIONS,
        HybridDemapper(constellation=qam, sigma2=SIGMA2),
        monitor_factory=lambda: PilotBERMonitor(0.12, window=2, cooldown=2),
        config=SessionConfig(frame=FC, queue_depth=queue_depth, coded=CODED),
        retrain_factory=lambda i: RotatePolicy(qam),
        seed=99,
    )
    traffic = {}
    rng = np.random.default_rng(31)
    chan_clean = SteadyChannel(AWGNFactory(8.0, 4))
    chan_jump = SteppedChannel(
        AWGNFactory(8.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(8.0, 4))),
        step_seq=4,
    )
    for i, s in enumerate(sessions):
        (srng,) = rng.spawn(1)
        chan = chan_jump if i % 2 == 0 else chan_clean
        traffic[s.session_id] = generate_traffic(
            qam, FC, N_FRAMES, chan, srng, coded=CODED
        )
    with engine:
        run_load(engine, traffic)
    timelines = {}
    for s in sessions:
        st = s.stats
        timelines[s.session_id] = (
            tuple(reports[s.session_id]),
            tuple(st.trigger_seqs),
            st.retrains,
            st.frames_decoded,
            st.crc_failures,
            tuple(st.crc_fail_seqs),
            tuple(st.post_fec_ber_trajectory),
            st.frame_error_rate,
        )
    return timelines


@pytest.fixture(scope="module")
def coded_reference(qam16):
    """Sequential coded reference: inline workers, single-frame batches."""
    return serve_coded(qam16, max_batch=1, queue_depth=1, retrain_workers=0)


class TestCodedServingDeterminism:
    """Coded sessions inherit the determinism contract unchanged: the
    decoded-bit timeline (post-FEC BER per frame), CRC-failure seqs, FER
    and trigger timeline are a pure function of the traffic seed,
    regardless of micro-batch width, queue depth or worker count."""

    def test_coded_path_actually_exercised(self, coded_reference):
        """Sanity: the jump half fails CRCs and fires the ladder; the
        clean half decodes everything (coverage of both trigger legs)."""
        jump = [t for i, t in enumerate(coded_reference.values()) if i % 2 == 0]
        clean = [t for i, t in enumerate(coded_reference.values()) if i % 2 == 1]
        for (_, triggers, _, decoded, failures, fail_seqs, traj, fer) in jump:
            assert decoded == N_FRAMES and failures > 0 and triggers
            assert len(fail_seqs) == failures and fer == failures / decoded
            assert len(traj) == N_FRAMES
        for (_, _, _, decoded, failures, fail_seqs, traj, fer) in clean:
            assert decoded == N_FRAMES and failures == 0 and not fail_seqs
            assert fer == 0.0 and all(b == 0.0 for b in traj)

    @pytest.mark.parametrize("max_batch", [2, 3, 64])
    def test_invariant_to_micro_batch_width(self, qam16, coded_reference, max_batch):
        got = serve_coded(qam16, max_batch=max_batch, queue_depth=1, retrain_workers=0)
        assert got == coded_reference

    @pytest.mark.parametrize("queue_depth", [4, 16])
    def test_invariant_to_queue_depth(self, qam16, coded_reference, queue_depth):
        got = serve_coded(
            qam16, max_batch=64, queue_depth=queue_depth, retrain_workers=0
        )
        assert got == coded_reference

    @pytest.mark.parametrize("retrain_workers", [1, 4])
    def test_invariant_to_worker_threads(self, qam16, coded_reference, retrain_workers):
        got = serve_coded(
            qam16, max_batch=64, queue_depth=4, retrain_workers=retrain_workers
        )
        assert got == coded_reference
