"""Observability layer: tracing, metrics registry, profiling, obs_report.

Four pillars of coverage:

* **tracer mechanics** — ring-buffer bounding (latest kept, evictions
  counted), wall-clock stamps excluded from deterministic snapshots, and
  both exporters round-trip (Chrome ``trace_event`` JSON loads, the plain
  log renders every event);
* **metrics registry** — instrument semantics (monotone counters, live
  callback views, kind-per-name, label identity), Prometheus-text and JSON
  exporters, and the sharding contract: ``merge()`` of per-shard
  registries equals recording everything in one;
* **passivity** — the hard acceptance gate: with a tracer, profiler and
  registry all attached, per-session LLR/trigger/σ²/tier timelines are
  bit-identical to an untraced run at every micro-batch width and worker
  count; the per-session *event projection* is itself invariant to those
  knobs, and the full deterministic trace snapshot is worker-count
  invariant for retrain-free traffic;
* **reporting** — ``export_run`` → JSON → ``render_dashboard`` → CLI.
"""

import json
import threading

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.channels.factories import AWGNFactory, CompositeFactory, PhaseOffsetFactory
from repro.extraction import HybridDemapper
from repro.extraction.monitor import PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.modulation import qam_constellation
from repro.serving import (
    DEGRADED,
    EngineConfig,
    MetricsRegistry,
    RetrainSupervisor,
    RoundProfiler,
    ServingEngine,
    ServingFrame,
    SessionConfig,
    SteadyChannel,
    SteppedChannel,
    Tracer,
    build_fleet,
    generate_traffic,
    run_load,
)
from repro.serving.obs_report import export_run, main, render_dashboard
from repro.serving.observability import ENGINE_PHASES
from repro.serving.telemetry import EngineStats, LatencyHistogram, SessionStats

SIGMA2 = sigma2_from_snr(8.0, 4)
FC = FrameConfig(pilot_symbols=16, payload_symbols=48)
N_SESSIONS = 6
N_FRAMES = 10
OFFSET = np.pi / 4


@pytest.fixture(scope="module")
def qam16():
    return qam_constellation(16)


class RotatePolicy:
    """Deterministic-in-rng retrain stand-in (the determinism-suite canary)."""

    def __init__(self, qam):
        self.qam = qam

    def __call__(self, rng):
        angle = OFFSET + rng.normal(scale=1e-3)
        return HybridDemapper(
            constellation=type(self.qam)(points=self.qam.points * np.exp(1j * angle)),
            sigma2=SIGMA2,
        )


def make_traffic(qam, session_ids, *, jump=True, seed=17):
    chan_clean = SteadyChannel(AWGNFactory(8.0, 4))
    chan_jump = SteppedChannel(
        AWGNFactory(8.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(8.0, 4))),
        step_seq=4,
    )
    rng = np.random.default_rng(seed)
    traffic = {}
    for i, sid in enumerate(session_ids):
        (srng,) = rng.spawn(1)
        chan = chan_jump if (jump and i % 2 == 0) else chan_clean
        traffic[sid] = generate_traffic(qam, FC, N_FRAMES, chan, srng)
    return traffic


def serve(qam, *, max_batch, retrain_workers, tracer=None, profiler=None,
          registry=None, jump=True, with_policy=True):
    """One full serving run; returns outputs, timelines and the engine."""
    llrs = {}
    engine = ServingEngine(config=EngineConfig(
        max_batch=max_batch,
        retrain_workers=retrain_workers,
        tracer=tracer,
        profiler=profiler,
        on_frame=lambda s, f, block, rep: llrs.setdefault(s.session_id, []).append(
            block.copy()
        ),
    ))
    if registry is not None:
        engine.register_metrics(registry)
    sessions = build_fleet(
        engine,
        N_SESSIONS,
        HybridDemapper(constellation=qam, sigma2=SIGMA2),
        monitor_factory=lambda: PilotBERMonitor(0.12, window=2, cooldown=2),
        config=SessionConfig(frame=FC, queue_depth=4),
        retrain_factory=(lambda i: RotatePolicy(qam)) if with_policy else None,
        seed=99,
    )
    with engine:
        run_load(
            engine, make_traffic(qam, [s.session_id for s in sessions], jump=jump)
        )
    timelines = {
        s.session_id: (
            tuple(s.stats.trigger_seqs),
            tuple(s.stats.tier_timeline),
            tuple(s.stats.sigma2_trajectory),
            s.stats.retrains,
        )
        for s in sessions
    }
    return llrs, timelines, engine


def assert_identical(run, reference):
    llrs, timelines = run[0], run[1]
    ref_llrs, ref_timelines = reference[0], reference[1]
    assert timelines == ref_timelines
    assert set(llrs) == set(ref_llrs)
    for sid in ref_llrs:
        assert len(llrs[sid]) == len(ref_llrs[sid]) == N_FRAMES
        for got, ref in zip(llrs[sid], ref_llrs[sid]):
            assert np.array_equal(got, ref)


# ---------------------------------------------------------------------------
# tracer mechanics
# ---------------------------------------------------------------------------
class TestTracerCore:
    def test_ring_keeps_latest_and_counts_evictions(self):
        t = Tracer(capacity=4)
        for i in range(10):
            t.emit("e", ts=i, seq=i)
        assert len(t) == 4
        assert t.dropped == 6
        assert [e.ts for e in t.events] == [6, 7, 8, 9]
        snap = t.snapshot()
        assert snap["capacity"] == 4 and snap["dropped"] == 6
        t.clear()
        assert len(t) == 0 and t.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_wall_clock_stamps_excluded_from_deterministic_snapshot(self):
        t = Tracer(wall_clock=True)
        t.emit("e", ts=1, round=0, session_id="s", seq=2, k="v")
        (event,) = t.events
        assert event.wall is not None
        det = event.as_dict()
        assert "wall" not in det
        assert det == {
            "name": "e", "ts": 1, "ph": "i", "round": 0,
            "session_id": "s", "seq": 2, "args": {"k": "v"},
        }
        assert "wall" in event.as_dict(deterministic=False)
        cold = Tracer()
        cold.emit("e", ts=1)
        assert cold.events[0].wall is None

    def test_session_events_filters_by_track(self):
        t = Tracer()
        t.emit("a", ts=0, session_id="x")
        t.emit("b", ts=1)
        t.emit("c", ts=2, session_id="y")
        t.emit("d", ts=3, session_id="x")
        assert [e.name for e in t.session_events("x")] == ["a", "d"]

    def test_chrome_export_loads_and_names_tracks(self):
        t = Tracer()
        t.emit("round.begin", ts=0, round=0)
        t.emit("phase.demap-launch", ts=0, ph="X", dur=64, round=0, width=2)
        t.emit("frame.served", ts=64, round=0, session_id="s1", seq=0)
        t.emit("frame.served", ts=64, round=0, session_id="s2", seq=0)
        t.emit("frame.served", ts=128, round=1, session_id="s1", seq=1)
        doc = json.loads(t.chrome_json(indent=2))
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"engine", "s1", "s2"}
        span = next(e for e in events if e["ph"] == "X")
        assert span["dur"] == 64 and span["args"]["round"] == 0
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        # engine events ride tid 0, session events their own tids
        assert {e["tid"] for e in events if e.get("args", {}).get("seq") == 0} == {1, 2}

    def test_plain_log_renders_every_event(self):
        t = Tracer()
        t.emit("frame.served", ts=128, round=3, session_id="s0", seq=5, tier="track")
        t.emit("phase.demap-launch", ts=0, ph="X", dur=64)
        lines = t.to_log()
        assert len(lines) == 2
        assert "frame.served" in lines[0] and "s0" in lines[0]
        assert "seq=5" in lines[0] and "tier=track" in lines[0]
        assert "dur=64" in lines[1]


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        r = MetricsRegistry()
        c = r.counter("frames_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = r.gauge("depth")
        g.set(3.5)
        assert g.value == 3.5
        h = r.histogram("wait")
        h.record(7)
        assert h.hist.count == 1
        assert len(r) == 3

    def test_registration_is_idempotent_and_label_scoped(self):
        r = MetricsRegistry()
        a = r.counter("x_total", {"s": "a"})
        b = r.counter("x_total", {"s": "b"})
        assert a is not b
        a.inc(2)
        assert r.counter("x_total", {"s": "a"}) is a
        assert r.counter("x_total", {"s": "a"}).value == 2

    def test_kind_conflict_and_invalid_names_raise(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")
        with pytest.raises(ValueError, match="invalid metric name"):
            r.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            r.counter("ok", {"0bad": "v"})

    def test_callback_instruments_read_live_and_refuse_writes(self):
        r = MetricsRegistry()
        state = {"n": 1}
        c = r.counter("live_total", fn=lambda: state["n"])
        g = r.gauge("live", fn=lambda: state["n"] * 2)
        h = LatencyHistogram()
        hv = r.histogram("live_wait", source=lambda: h)
        state["n"] = 9
        h.record(3)
        assert c.value == 9 and g.value == 18 and hv.hist.count == 1
        with pytest.raises(TypeError):
            c.inc()
        with pytest.raises(TypeError):
            g.set(1)
        with pytest.raises(TypeError):
            hv.record(1)

    def test_reregistering_a_callback_rebinds_it(self):
        """Churn contract: a reused session id points at the new object."""
        r = MetricsRegistry()
        r.counter("n_total", {"session": "s"}, fn=lambda: 1)
        r.counter("n_total", {"session": "s"}, fn=lambda: 2)
        assert r.counter("n_total", {"session": "s"}).value == 2
        old, new = LatencyHistogram(), LatencyHistogram()
        new.record(5)
        r.histogram("w", source=lambda: old)
        r.histogram("w", source=lambda: new)
        assert r.histogram("w").hist.count == 1

    def test_prometheus_text_shape(self):
        r = MetricsRegistry()
        r.counter("frames_total", {"session": 's"x'}).inc(3)
        r.gauge("sigma2").set(float("nan"))
        h = r.histogram("wait")
        h.record(0)
        h.record(5)
        text = r.to_prometheus()
        lines = text.splitlines()
        assert text.endswith("\n")
        assert lines.count("# TYPE frames_total counter") == 1
        assert 'frames_total{session="s\\"x"} 3' in lines
        assert "sigma2 NaN" in lines
        assert 'wait_bucket{le="0"} 1' in lines
        assert 'wait_bucket{le="7"} 2' in lines
        assert 'wait_bucket{le="+Inf"} 2' in lines
        assert "wait_sum 5" in lines and "wait_count 2" in lines

    def test_json_export_round_trips(self):
        r = MetricsRegistry()
        r.counter("a_total").inc(2)
        r.histogram("w").record(9)
        doc = r.to_json()
        assert doc == json.loads(json.dumps(doc))
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["a_total"]["value"] == 2
        assert by_name["w"]["count"] == 1 and by_name["w"]["total"] == 9

    def test_merge_equals_record_in_one(self):
        rng = np.random.default_rng(7)
        samples = rng.integers(0, 500, size=60)
        combined = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        one = MetricsRegistry()
        for i, s in enumerate(samples):
            shard = shards[i % 3]
            shard.counter("frames_total").inc()
            shard.histogram("wait").record(int(s))
            shard.gauge("last").set(int(s))
            one.counter("frames_total").inc()
            one.histogram("wait").record(int(s))
            one.gauge("last").set(int(s))
        for shard in shards:
            combined.merge(shard)
        assert combined.counter("frames_total").value == 60
        assert (
            combined.histogram("wait").hist.snapshot()
            == one.histogram("wait").hist.snapshot()
        )
        # gauges: last writer wins — shard 2 held the final sample
        assert combined.gauge("last").value == shards[2].gauge("last").value

    def test_merge_materializes_callbacks_and_guards_sources(self):
        src = MetricsRegistry()
        src.counter("n_total", fn=lambda: 5)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.counter("n_total").value == 5
        dst.merge(src)
        assert dst.counter("n_total").value == 10  # counters add
        h = LatencyHistogram()
        viewer = MetricsRegistry()
        viewer.histogram("w", source=lambda: h)
        other = MetricsRegistry()
        other.histogram("w").record(1)
        with pytest.raises(TypeError, match="source-backed"):
            viewer.merge(other)


# ---------------------------------------------------------------------------
# stats re-registration + snapshot schema (satellite a)
# ---------------------------------------------------------------------------
class TestStatsRegistration:
    def test_snapshots_carry_the_schema_version(self):
        from repro.serving import SCHEMA_VERSION

        assert SessionStats().snapshot()["schema"] == SCHEMA_VERSION
        assert EngineStats().snapshot()["schema"] == SCHEMA_VERSION

    def test_failure_summary_aggregates_the_log(self):
        from repro.serving import FailureRecord

        stats = EngineStats()
        for kind, action in [("error", "retry"), ("error", "degrade"),
                             ("poison", "quarantine"), ("hung", "degrade")]:
            stats.failure_log.append(
                FailureRecord(round=0, session_id="s", kind=kind,
                              error="x", failures=1, action=action)
            )
        summary = stats.failure_summary()
        assert summary["total"] == 4
        assert summary["by_kind"] == {"error": 2, "hung": 1, "poison": 1}
        assert summary["by_action"] == {"degrade": 2, "quarantine": 1, "retry": 1}
        assert stats.snapshot()["failure_summary"] == summary
        assert EngineStats().snapshot()["failure_summary"]["total"] == 0

    def test_registered_views_match_snapshots(self, qam16):
        registry = MetricsRegistry()
        llrs, timelines, engine = serve(
            qam16, max_batch=8, retrain_workers=0, registry=registry
        )
        eng = engine.telemetry.snapshot()
        for name in ("rounds", "frames_served", "retrains_started", "tracks"):
            assert registry.counter("serving_engine_" + name).value == eng[name]
        assert (
            registry.histogram("serving_engine_queue_wait").hist.snapshot()
            == eng["queue_wait"]
        )
        session = engine.sessions[0]
        labels = {"session": session.session_id}
        snap = session.stats.snapshot()
        for name in ("frames_served", "retrains", "rejects"):
            assert registry.counter("serving_session_" + name, labels).value == snap[name]
        assert registry.gauge("serving_session_triggers", labels).value == len(
            snap["trigger_seqs"]
        )
        assert registry.gauge("serving_session_sigma2", labels).value == session.sigma2
        assert registry.gauge("serving_engine_sessions").value == N_SESSIONS
        # worker ledger: every started retrain was submitted and installed
        assert (
            registry.counter("serving_retrain_jobs_submitted").value
            == eng["retrains_started"]
        )
        assert (
            registry.counter("serving_retrain_jobs_installed").value
            == eng["retrains_completed"]
        )
        assert registry.gauge("serving_retrain_queue_depth").value == 0
        # supervisor population: everything idle after the run
        idle = registry.gauge("serving_supervisor_sessions", {"state": "idle"})
        assert idle.value == len(engine.supervisor.snapshot())
        for state in ("in_flight", "backoff", "open"):
            assert (
                registry.gauge("serving_supervisor_sessions", {"state": state}).value
                == 0
            )
        # the whole surface exports cleanly
        assert "serving_engine_rounds" in registry.to_prometheus()
        json.dumps(registry.to_json())

    def test_late_joiner_is_registered_automatically(self, qam16):
        registry = MetricsRegistry()
        engine = ServingEngine()
        engine.register_metrics(registry)
        from repro.serving import DemapperSession

        engine.add_session(
            DemapperSession(
                "late",
                HybridDemapper(constellation=qam16, sigma2=SIGMA2),
                PilotBERMonitor(0.5, window=2),
                config=SessionConfig(frame=FC),
            )
        )
        assert (
            registry.counter(
                "serving_session_frames_served", {"session": "late"}
            ).value
            == 0
        )


# ---------------------------------------------------------------------------
# passivity: the acceptance gate
# ---------------------------------------------------------------------------
class TestTracingPassivity:
    @pytest.fixture(scope="class")
    def untraced(self, qam16):
        return serve(qam16, max_batch=1, retrain_workers=0)

    @pytest.mark.parametrize(
        "max_batch,retrain_workers", [(1, 0), (3, 0), (64, 0), (64, 2), (8, 4)]
    )
    def test_outputs_bit_identical_with_full_observability(
        self, qam16, untraced, max_batch, retrain_workers
    ):
        """LLR/trigger/σ²/tier timelines: traced == untraced, every config."""
        traced = serve(
            qam16,
            max_batch=max_batch,
            retrain_workers=retrain_workers,
            tracer=Tracer(wall_clock=True),
            profiler=RoundProfiler(),
            registry=MetricsRegistry(),
        )
        assert_identical(traced, untraced)
        assert len(traced[2].tracer) > 0

    def test_tiny_ring_is_still_passive(self, qam16, untraced):
        """A constantly-evicting ring changes nothing but what's remembered."""
        tracer = Tracer(capacity=8)
        traced = serve(qam16, max_batch=64, retrain_workers=0, tracer=tracer)
        assert_identical(traced, untraced)
        assert len(tracer) == 8 and tracer.dropped > 0

    def test_trace_snapshot_worker_invariant_without_retrains(self, qam16):
        """Retrain-free traffic: the *full* deterministic event stream is
        identical across worker counts (threads only move install timing,
        and there is nothing to install)."""
        snaps = []
        for workers in (0, 2):
            tracer = Tracer(wall_clock=(workers == 2))
            serve(
                qam16, max_batch=8, retrain_workers=workers,
                tracer=tracer, jump=False, with_policy=False,
            )
            snaps.append(tracer.snapshot())
        assert snaps[0] == snaps[1]

    @pytest.mark.parametrize("max_batch,retrain_workers", [(3, 0), (64, 2)])
    def test_session_projection_invariant_with_retrains(
        self, qam16, max_batch, retrain_workers
    ):
        """Per-session lifecycle projection (names + seqs + deterministic
        args) is batch-width and worker-count invariant even when retrains
        fire — only global interleaving and clock stamps may differ."""

        def projection(tracer, sid):
            keep = {"frame.submit", "frame.served", "retrain.install",
                    "phase.retrain-submit"}
            out = []
            for e in tracer.session_events(sid):
                if e.name not in keep:
                    continue
                args = e.args or {}
                out.append(
                    (e.name, e.seq, args.get("pilot_ber"), args.get("tier"),
                     args.get("sigma2"))
                )
            return out

        ref_tracer = Tracer()
        _, _, ref_engine = serve(
            qam16, max_batch=1, retrain_workers=0, tracer=ref_tracer
        )
        got_tracer = Tracer()
        serve(
            qam16, max_batch=max_batch, retrain_workers=retrain_workers,
            tracer=got_tracer,
        )
        sids = sorted({e.session_id for e in ref_tracer.events if e.session_id})
        assert len(sids) == N_SESSIONS
        for sid in sids:
            assert projection(got_tracer, sid) == projection(ref_tracer, sid)

    def test_lifecycle_event_names_present(self, qam16):
        tracer = Tracer()
        serve(qam16, max_batch=8, retrain_workers=0, tracer=tracer)
        names = {e.name for e in tracer.events}
        assert {
            "round.begin", "round.end", "frame.submit", "frame.batched",
            "frame.served", "session.join", "retrain.install",
        } <= names
        assert {f"phase.{p}" for p in ENGINE_PHASES if p != "control-plane"} <= names
        assert "phase.control-plane" in names
        # backpressure shows up as reasoned rejects (queue_depth=4, 10 frames)
        rejects = [e for e in tracer.events if e.name == "frame.reject"]
        assert rejects and all(
            e.args["reason"] == "backpressure" for e in rejects
        )


# ---------------------------------------------------------------------------
# profiler + fault-path events + worker gauges (satellite b)
# ---------------------------------------------------------------------------
class TestProfilerAndFaultEvents:
    def test_profiler_covers_all_phases_with_sane_counts(self, qam16):
        prof = RoundProfiler()
        _, _, engine = serve(qam16, max_batch=8, retrain_workers=0, profiler=prof)
        assert set(ENGINE_PHASES) <= set(prof.phases)
        rounds = engine.telemetry.rounds
        assert prof.phases["schedule"].count == rounds
        assert prof.phases["absorb-outcomes"].count == rounds
        assert prof.phases["demap-launch"].count == engine.telemetry.batches
        assert sum(s.count for s in prof.launches.values()) == engine.telemetry.batches
        for stat in prof.phases.values():
            snap = stat.snapshot()
            assert snap["total_s"] >= 0 and snap["min_s"] <= snap["max_s"]
        reg = MetricsRegistry()
        prof.register_metrics(reg)
        assert (
            reg.counter(
                "serving_profile_calls_total", {"phase": "schedule"}
            ).value
            == rounds
        )
        prof.clear()
        assert not prof.phases and not prof.launches

    def test_empty_stage_snapshot_is_nan_safe(self):
        prof = RoundProfiler()
        prof.account("x", 0.0)
        snap = prof.snapshot()
        assert snap["phases"]["x"]["count"] == 1
        assert snap["launches"] == {}

    def test_hard_removal_traces_drop_and_leave(self, qam16):
        tracer = Tracer()
        engine = ServingEngine(config=EngineConfig(tracer=tracer))
        sessions = build_fleet(
            engine, 2, HybridDemapper(constellation=qam16, sigma2=SIGMA2),
            monitor_factory=lambda: PilotBERMonitor(0.5, window=2),
            config=SessionConfig(frame=FC, queue_depth=4), seed=1,
        )
        sid = sessions[0].session_id
        frames = generate_traffic(
            qam16, FC, 3, SteadyChannel(AWGNFactory(8.0, 4)), 5
        )
        for f in frames:
            engine.submit(sid, f)
        engine.remove_session(sid, drain=False)
        names = [e.name for e in tracer.session_events(sid)]
        assert names[-2:] == ["frame.dropped", "session.leave"]
        drop = next(e for e in tracer.events if e.name == "frame.dropped")
        assert drop.args["count"] == 3
        # graceful drain of the empty survivor: drain then leave
        other = sessions[1].session_id
        engine.remove_session(other, drain=True)
        other_names = [e.name for e in tracer.session_events(other)]
        assert "session.drain" in other_names and "session.leave" in other_names

    def test_hung_retrain_emits_trace_and_degrades(self, qam16):
        from repro.serving import DemapperSession

        release = threading.Event()

        def stuck(rng):
            release.wait(timeout=30)
            raise RuntimeError("released late")

        tracer = Tracer()
        engine = ServingEngine(config=EngineConfig(
            retrain_workers=1,
            supervisor=RetrainSupervisor(max_failures=1, deadline_rounds=3),
            tracer=tracer,
        ))
        registry = engine.register_metrics(MetricsRegistry())
        session = engine.add_session(
            DemapperSession(
                "s",
                HybridDemapper(constellation=qam16, sigma2=SIGMA2),
                PilotBERMonitor(0.12, window=2, cooldown=2),
                config=SessionConfig(frame=FC, queue_depth=4, sigma2_alpha=0.25),
                retrain=stuck,
                rng=0,
            )
        )
        chan = SteppedChannel(
            AWGNFactory(8.0, 4),
            CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(8.0, 4))),
            step_seq=2,
        )
        frames = generate_traffic(qam16, FC, 8, chan, 6)
        offset = 0
        for _ in range(40):
            while offset < len(frames) and engine.submit("s", frames[offset]):
                offset += 1
            engine.step()
            if offset == len(frames) and session.pending == 0:
                break
        assert engine.telemetry.retrains_hung == 1
        assert session.health == DEGRADED
        names = [e.name for e in tracer.session_events("s")]
        assert "retrain.hung" in names
        hung = next(e for e in tracer.events if e.name == "retrain.hung")
        assert hung.args["deadline_rounds"] == 3
        fault = next(e for e in tracer.events if e.name == "fault.hung")
        assert fault.args["action"] == "degrade"
        health = next(e for e in tracer.events if e.name == "session.health")
        assert health.args["health"] == DEGRADED
        assert registry.counter("serving_retrain_jobs_abandoned").value == 1
        assert registry.gauge("serving_retrain_abandoned").value == 1
        assert (
            registry.gauge("serving_supervisor_sessions", {"state": "open"}).value
            == 1
        )
        release.set()
        engine.close(timeout=5)

    def test_poison_quarantine_traces_fault_and_health(self, qam16):
        from repro.serving import DemapperSession

        tracer = Tracer()
        engine = ServingEngine(config=EngineConfig(tracer=tracer))
        engine.add_session(
            DemapperSession(
                "s",
                HybridDemapper(constellation=qam16, sigma2=SIGMA2),
                PilotBERMonitor(0.9, window=2),
                config=SessionConfig(frame=FC, queue_depth=4),
            )
        )
        frames = generate_traffic(
            qam16, FC, 3, SteadyChannel(AWGNFactory(8.0, 4)), 5
        )
        received = np.array(frames[1].received, copy=True)
        received[2] = complex(float("nan"), float("nan"))
        poison = ServingFrame(
            seq=frames[1].seq, indices=frames[1].indices,
            pilot_mask=frames[1].pilot_mask, received=received,
        )
        for f in (frames[0], poison, frames[2]):
            engine.submit("s", f)
        for _ in range(4):
            engine.step()
        names = [e.name for e in tracer.session_events("s")]
        assert "frame.quarantined" in names and "fault.poison" in names
        q = next(e for e in tracer.events if e.name == "frame.quarantined")
        assert q.seq == poison.seq and q.args["lost"] == 2  # poison + queued
        health = next(e for e in tracer.events if e.name == "session.health")
        assert health.args["health"] == "quarantined"
        # the follow-up submission refusal is reasoned
        assert not engine.submit("s", frames[2])
        reject = [e for e in tracer.events if e.name == "frame.reject"][-1]
        assert reject.args["reason"] == "quarantined"
        # the dashboard shows the fault: failure summary + health timeline
        text = render_dashboard(export_run(engine))
        assert "kind   poison" in text and "action quarantine" in text
        assert "-> quarantined" in text


# ---------------------------------------------------------------------------
# export + dashboard + CLI (satellite f's engine room)
# ---------------------------------------------------------------------------
class TestObsReport:
    @pytest.fixture(scope="class")
    def run_doc(self, qam16, tmp_path_factory):
        registry = MetricsRegistry()
        _, _, engine = serve(
            qam16, max_batch=8, retrain_workers=0,
            tracer=Tracer(), profiler=RoundProfiler(), registry=registry,
        )
        path = tmp_path_factory.mktemp("obs") / "run.json"
        doc = export_run(engine, path=path, indent=1)
        return doc, path, engine

    def test_export_structure_and_round_trip(self, run_doc):
        doc, path, engine = run_doc
        from repro.serving import SCHEMA_VERSION

        assert doc["schema"] == SCHEMA_VERSION
        assert doc["engine"]["schema"] == SCHEMA_VERSION
        assert len(doc["sessions"]) == N_SESSIONS
        assert set(doc["health"]) == set(doc["sessions"])
        assert doc["trace"]["events"] and doc["profile"]["phases"]
        assert doc["metrics"]["metrics"]
        with open(path, encoding="utf-8") as fh:
            reloaded = json.load(fh)
        assert reloaded["engine"]["rounds"] == doc["engine"]["rounds"]
        assert len(reloaded["trace"]["events"]) == len(doc["trace"]["events"])

    def test_export_includes_departed_sessions_when_passed(self, qam16):
        tracer = Tracer()
        engine = ServingEngine(config=EngineConfig(tracer=tracer))
        sessions = build_fleet(
            engine, 2, HybridDemapper(constellation=qam16, sigma2=SIGMA2),
            monitor_factory=lambda: PilotBERMonitor(0.5, window=2),
            config=SessionConfig(frame=FC), seed=1,
        )
        gone = sessions[0]
        engine.remove_session(gone.session_id, drain=False)
        doc = export_run(engine)
        assert gone.session_id not in doc["sessions"]
        doc = export_run(engine, sessions=sessions)
        assert gone.session_id in doc["sessions"]

    def test_dashboard_renders_live_and_reloaded(self, run_doc):
        doc, path, _ = run_doc
        live = render_dashboard(doc)
        with open(path, encoding="utf-8") as fh:
            reloaded = render_dashboard(json.load(fh))
        for text in (live, reloaded):
            assert "== engine ==" in text
            assert "== sessions ==" in text
            assert "mean_occupancy" in text
            assert "s000" in text
            assert "demap-launch" in text  # profiler breakdown
            assert "== failures ==" in text and "(none)" in text
            assert "events=" in text
        with pytest.raises(ValueError, match="unknown section"):
            render_dashboard(doc, sections=["nope"])

    def test_dashboard_without_profile_falls_back_to_trace_counts(
        self, qam16
    ):
        tracer = Tracer()
        _, _, engine = serve(qam16, max_batch=8, retrain_workers=0, tracer=tracer)
        text = render_dashboard(export_run(engine))
        assert "trace event counts only" in text
        assert "phase.schedule" in text
        bare = ServingEngine()
        minimal = render_dashboard(export_run(bare))
        assert "(no profiler or trace attached)" in minimal
        assert "(no tracer attached)" in minimal

    def test_cli_renders_and_filters_sections(self, run_doc, capsys):
        _, path, _ = run_doc
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "== engine ==" in out and "== trace ==" in out
        assert main([str(path), "--section", "sessions"]) == 0
        out = capsys.readouterr().out
        assert "== sessions ==" in out and "== engine ==" not in out
