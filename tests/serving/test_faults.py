"""Fault tolerance: supervision, quarantine, degradation, chaos.

Five layers of coverage:

* **supervisor state machine** — hypothesis property tests for the
  retry/backoff/circuit-breaker policy: never retries before the backoff
  expires, opens after *exactly* ``max_failures``, re-arms on a successful
  install, and flags in-flight jobs hung only past the deadline;
* **worker failure surfacing** — every failed job becomes an outcome
  (none re-raised, none swallowed), ``wait_all``/``close`` timeouts
  abandon hung jobs instead of wedging;
* **poison quarantine** — the opt-in submit-time finite check and the
  always-on post-demap guard: the offending frame and session are fenced
  off, counted, and never folded into BER/σ² state, while batchmates'
  rows stay bit-identical;
* **degraded serving** — a session whose retrains keep failing (or
  hanging) ends up DEGRADED: still serving every frame on its last-good
  demapper, triggers suppressed, never paused forever;
* **chaos soak + fault isolation** — the PR 5 churn soak extended with a
  seeded :class:`FaultPlan` storm (retrain exceptions, hangs, poison
  frames): the engine never raises, ``accepted == served + dropped +
  quarantined (+ pending)`` every round, and fault-free sessions'
  LLR/σ²/trigger/tier timelines are bit-identical to a no-fault run at
  every batch width and worker count.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import sigma2_from_snr
from repro.channels.factories import (
    AWGNFactory,
    CompositeFactory,
    IQImbalanceFactory,
    PhaseOffsetFactory,
)
from repro.extraction import HybridDemapper
from repro.extraction.monitor import PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.modulation import qam_constellation
from repro.serving import (
    DEGRADED,
    EngineConfig,
    HEALTHY,
    QUARANTINED,
    RETRAINING,
    SERVING,
    CodedFrameConfig,
    DemapperSession,
    FaultPlan,
    InjectedRetrainError,
    RetrainHungError,
    RetrainSupervisor,
    RetrainWorker,
    ServingEngine,
    ServingFrame,
    SessionConfig,
    SteadyChannel,
    SteppedChannel,
    generate_traffic,
)

S10 = sigma2_from_snr(10.0, 4)
FC = FrameConfig(pilot_symbols=8, payload_symbols=24)
OFFSET = np.pi / 4
CODED = CodedFrameConfig()  # K=3 (7,5), CRC-16: 24 info bits in this FC


@pytest.fixture(scope="module")
def qam16():
    return qam_constellation(16)


class RotateStub:
    """Deterministic-in-rng retrain stand-in (same canary as the churn
    suite): corrected centroids plus an rng-drawn jitter."""

    def __init__(self, qam, angle=OFFSET):
        self.qam = qam
        self.angle = angle

    def __call__(self, rng):
        angle = self.angle + rng.normal(scale=1e-3)
        return HybridDemapper(
            constellation=type(self.qam)(points=self.qam.points * np.exp(1j * angle)),
            sigma2=S10,
        )


def make_session(qam, sid, *, seed=0, queue_depth=4, retrain=None, weight=1.0,
                 threshold=0.9, tracking=False, validate=False, coded=None):
    return DemapperSession(
        sid,
        HybridDemapper(constellation=qam, sigma2=S10),
        PilotBERMonitor(threshold, window=2, cooldown=2),
        config=SessionConfig(
            frame=FC, queue_depth=queue_depth, weight=weight,
            sigma2_alpha=0.25, tracking=tracking, validate_frames=validate,
            coded=coded,
        ),
        retrain=retrain,
        rng=seed,
    )


def clean_traffic(qam, n_frames, seed, *, snr=10.0, coded=None):
    return generate_traffic(
        qam, FC, n_frames, SteadyChannel(AWGNFactory(snr, 4)), seed, coded=coded
    )


def jump_traffic(qam, n_frames, seed, *, step=4, coded=None):
    chan = SteppedChannel(
        AWGNFactory(10.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(10.0, 4))),
        step_seq=step,
    )
    return generate_traffic(qam, FC, n_frames, chan, seed, coded=coded)


def warp_traffic(qam, n_frames, seed, *, step=4):
    """Jump into a non-rigid IQ warp: rigid tracking cannot explain it,
    so a tracking session escalates to the retrain tier."""
    chan = SteppedChannel(
        AWGNFactory(10.0, 4),
        CompositeFactory((IQImbalanceFactory(8.0, 0.8), AWGNFactory(10.0, 4))),
        step_seq=step,
    )
    return generate_traffic(qam, FC, n_frames, chan, seed)


def poison_frame(frame, pos=0):
    """Copy a frame with one received sample replaced by NaN."""
    received = np.array(frame.received, copy=True)
    received[pos] = complex(float("nan"), float("nan"))
    return ServingFrame(
        seq=frame.seq, indices=frame.indices,
        pilot_mask=frame.pilot_mask, received=received,
        info_bits=frame.info_bits,
    )


# ---------------------------------------------------------------------------
# supervisor state machine (hypothesis)
# ---------------------------------------------------------------------------
class TestSupervisorProperties:
    """The backoff/circuit-breaker state machine, property-tested."""

    @given(
        max_failures=st.integers(min_value=1, max_value=6),
        backoff_base=st.integers(min_value=0, max_value=4),
        factor=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        gaps=st.lists(st.integers(min_value=0, max_value=9), min_size=6, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_opens_after_exactly_max_failures(
        self, max_failures, backoff_base, factor, gaps
    ):
        sup = RetrainSupervisor(
            max_failures=max_failures, backoff_base=backoff_base,
            backoff_factor=factor,
        )
        now = 0
        for n in range(1, max_failures + 1):
            sup.on_submitted("s", now)
            assert not sup.allows("s")  # in flight: no double-submit
            rec = sup.on_failure("s", now, RuntimeError("boom"))
            assert rec.failures == n
            if n < max_failures:
                assert rec.action == "retry"
                assert sup.state("s") == "backoff"
            else:
                assert rec.action == "degrade"
                assert sup.state("s") == "open"
            assert not sup.allows("s")  # backoff or open: triggers gated
            now += gaps[n % len(gaps)] + int(sup.backoff(n)) + 1
        # open stays open: further failures never re-close it
        assert sup.due_retries(now + 10_000) == []

    @given(
        backoff_base=st.integers(min_value=0, max_value=5),
        factor=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        n_prior=st.integers(min_value=1, max_value=4),
        fail_round=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_retries_before_backoff_expiry(
        self, backoff_base, factor, n_prior, fail_round
    ):
        sup = RetrainSupervisor(
            max_failures=n_prior + 1, backoff_base=backoff_base,
            backoff_factor=factor,
        )
        now = fail_round
        for _ in range(n_prior):  # n_prior-th failure schedules the retry
            sup.on_submitted("s", now)
            sup.on_failure("s", now, RuntimeError("boom"))
        expiry = fail_round + sup.backoff(n_prior)
        for t in range(fail_round, int(np.ceil(expiry)) + 2):
            due = sup.due_retries(t)
            if t < expiry:
                assert due == [], f"retried at {t}, backoff expires at {expiry}"
            else:
                assert due == ["s"]

    @given(
        max_failures=st.integers(min_value=2, max_value=5),
        n_failures=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_successful_install_rearms_the_breaker(self, max_failures, n_failures):
        n_failures = min(n_failures, max_failures - 1)  # breaker must not open yet
        sup = RetrainSupervisor(max_failures=max_failures, backoff_base=1)
        now = 0
        for _ in range(n_failures):
            sup.on_submitted("s", now)
            sup.on_failure("s", now, RuntimeError("boom"))
            now += 100
        sup.on_submitted("s", now)
        sup.on_installed("s")
        assert sup.allows("s")
        assert sup.failures("s") == 0
        # the count restarted: it takes max_failures *fresh* failures to open
        for n in range(1, max_failures + 1):
            sup.on_submitted("s", now)
            rec = sup.on_failure("s", now, RuntimeError("boom"))
            now += 100
        assert rec.action == "degrade" and rec.failures == max_failures

    @given(
        deadline=st.integers(min_value=1, max_value=20),
        submitted=st.integers(min_value=0, max_value=30),
        age=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_overdue_flags_in_flight_jobs_only_past_deadline(
        self, deadline, submitted, age
    ):
        sup = RetrainSupervisor(deadline_rounds=deadline)
        sup.on_submitted("s", submitted)
        overdue = sup.overdue(submitted + age)
        assert overdue == (["s"] if age >= deadline else [])
        # without a deadline nothing is ever hung
        relaxed = RetrainSupervisor(deadline_rounds=None)
        relaxed.on_submitted("s", submitted)
        assert relaxed.overdue(submitted + age) == []

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RetrainSupervisor(max_failures=0)
        with pytest.raises(ValueError):
            RetrainSupervisor(backoff_base=-1)
        with pytest.raises(ValueError):
            RetrainSupervisor(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetrainSupervisor(deadline_rounds=0)


# ---------------------------------------------------------------------------
# worker: failure surfacing + bounded waits
# ---------------------------------------------------------------------------
class TestWorkerFailures:
    def test_every_failure_surfaces_not_just_the_first(self, qam16):
        """The satellite fix: two raising jobs → two outcomes."""
        engine = ServingEngine()
        a = engine.add_session(make_session(qam16, "a"))
        b = engine.add_session(make_session(qam16, "b"))
        worker = RetrainWorker(2)

        def boom_a(rng):
            raise InjectedRetrainError("a exploded")

        def boom_b(rng):
            raise InjectedRetrainError("b exploded")

        worker.submit(a, boom_a, np.random.default_rng(0))
        worker.submit(b, boom_b, np.random.default_rng(1))
        assert worker.wait_all() == 0  # never raises, installs nothing
        errors = {s.session_id: str(e) for s, e in worker.take_outcomes()}
        assert errors == {"a": "a exploded", "b": "b exploded"}
        worker.close()

    def test_inline_failure_is_an_outcome_not_a_raise(self, qam16):
        engine = ServingEngine()
        (session,) = [engine.add_session(make_session(qam16, "s"))]
        worker = RetrainWorker(0)

        def boom(rng):
            raise InjectedRetrainError("inline boom")

        assert worker.submit(session, boom, np.random.default_rng(0)) == 0
        ((owner, err),) = worker.take_outcomes()
        assert owner is session and "inline boom" in str(err)
        assert session.stats.retrains == 0

    def test_wait_all_timeout_abandons_hung_jobs(self, qam16):
        engine = ServingEngine()
        (session,) = [engine.add_session(make_session(qam16, "s"))]
        release = threading.Event()
        good = HybridDemapper(constellation=qam16, sigma2=S10)

        def stuck(rng):
            release.wait(timeout=30)
            return good

        worker = RetrainWorker(1)
        worker.submit(session, stuck, np.random.default_rng(0))
        t0 = time.monotonic()
        installed = worker.wait_all(timeout=0.2)
        assert time.monotonic() - t0 < 10
        assert installed == 0
        assert worker.pending == 0 and worker.abandoned == 1
        ((owner, err),) = worker.take_outcomes()
        assert owner is session and isinstance(err, RetrainHungError)
        release.set()
        worker.close(timeout=5)
        # the abandoned job finished after release — but was never installed
        assert session.stats.retrains == 0

    def test_close_timeout_never_wedges_on_a_hung_job(self, qam16):
        engine = ServingEngine()
        (session,) = [engine.add_session(make_session(qam16, "s"))]
        release = threading.Event()

        def stuck(rng):
            release.wait(timeout=30)
            raise RuntimeError("released late")

        worker = RetrainWorker(1)
        worker.submit(session, stuck, np.random.default_rng(0))
        t0 = time.monotonic()
        worker.close(timeout=0.2)  # must return despite the stuck thread
        assert time.monotonic() - t0 < 10
        ((_, err),) = worker.take_outcomes()
        assert isinstance(err, RetrainHungError)
        release.set()  # let the thread die


# ---------------------------------------------------------------------------
# poison-frame quarantine
# ---------------------------------------------------------------------------
class TestPoisonQuarantine:
    def test_validate_frames_refuses_poison_at_submit(self, qam16):
        engine = ServingEngine()
        session = engine.add_session(make_session(qam16, "s", validate=True))
        frames = clean_traffic(qam16, 2, 1)
        assert engine.submit("s", frames[0])
        assert not engine.submit("s", poison_frame(frames[1]))
        assert session.stats.poison_rejected == 1
        assert session.pending == 1  # the poison frame was never accepted
        assert session.health == HEALTHY  # refused at the door ≠ quarantined
        engine.drain()
        assert session.stats.frames_served == 1

    def test_post_demap_guard_quarantines_frame_and_session(self, qam16):
        engine = ServingEngine()
        session = engine.add_session(make_session(qam16, "s"))
        frames = clean_traffic(qam16, 4, 2)
        engine.submit("s", frames[0])
        engine.submit("s", poison_frame(frames[1], pos=5))
        engine.submit("s", frames[2])
        engine.submit("s", frames[3])
        engine.step()  # serves frame 0
        assert session.health == HEALTHY
        engine.step()  # frame 1 is poison: quarantine
        assert session.health == QUARANTINED
        assert session.state == SERVING  # fenced, not paused
        # offending frame + the 2 queued behind it, never the served one
        assert session.stats.frames_quarantined == 3
        assert session.pending == 0 and not session.ready
        # σ²/BER state holds exactly one served frame — poison never landed
        assert len(session.stats.sigma2_trajectory) == 1
        assert len(session.stats.pilot_ber_trajectory) == 1
        assert session.stats.frames_served == 1
        # conservation: accepted(4) == served(1) + quarantined(3)
        tele = engine.telemetry
        assert tele.frames_served == 1
        assert tele.frames_quarantined == 3
        assert tele.sessions_quarantined == 1
        (record,) = tele.failure_log
        assert record.kind == "poison" and record.action == "quarantine"
        assert record.session_id == "s"
        assert tele.health_timeline == [(tele.now, "s", QUARANTINED)]
        assert session.stats.health_timeline == [(tele.now, QUARANTINED)]
        # submissions are refused from now on — final, like drain refusals
        assert not engine.submit("s", frames[2])
        assert session.stats.quarantine_refusals == 1
        # scheduler: no credit for a fenced-off session
        engine.step()
        assert "s" not in engine.scheduler.credits()
        engine.drain()  # completes despite the quarantined resident
        engine.close()

    def test_batchmate_rows_bit_identical_next_to_poison(self, qam16):
        """Fault isolation at the kernel level: a healthy session coalesced
        with a poison frame gets exactly the LLRs of a solo run."""

        def run(with_poison):
            got = []
            engine = ServingEngine(config=EngineConfig(
                max_batch=64,
                on_frame=lambda s, f, llrs, rep: (
                    got.append(llrs.copy()) if s.session_id == "ok" else None
                ),
            ))
            ok = engine.add_session(make_session(qam16, "ok", seed=3))
            frames = clean_traffic(qam16, 3, 7)
            if with_poison:
                bad = engine.add_session(make_session(qam16, "bad", seed=4))
                bad_frames = clean_traffic(qam16, 3, 8)
                for i, f in enumerate(bad_frames):
                    engine.submit("bad", poison_frame(f) if i == 1 else f)
            for f in frames:
                engine.submit("ok", f)
            engine.drain()
            assert ok.stats.frames_served == 3
            if with_poison:
                assert engine.session("bad").health == QUARANTINED
            timeline = (
                tuple(ok.stats.sigma2_trajectory),
                tuple(ok.stats.pilot_ber_trajectory),
            )
            return got, timeline

        solo, solo_timeline = run(with_poison=False)
        paired, paired_timeline = run(with_poison=True)
        assert paired_timeline == solo_timeline
        for a, b in zip(solo, paired):
            assert np.array_equal(a, b)

    def test_fault_plan_poison_is_seeded_and_pure(self, qam16):
        plan_a = FaultPlan(seed=9, poison_rate=0.3)
        plan_b = FaultPlan(seed=9, poison_rate=0.3)
        frames = clean_traffic(qam16, 20, 5)
        ca = plan_a.corrupt_traffic("sX", frames)
        cb = plan_b.corrupt_traffic("sX", frames)
        poisoned = [i for i, f in enumerate(ca) if not np.isfinite(f.received).all()]
        assert 0 < len(poisoned) < len(frames)
        for a, b in zip(ca, cb):
            assert np.array_equal(a.received, b.received, equal_nan=True)
        # decisions are per-(session, seq): another session differs
        other = [
            i
            for i, f in enumerate(plan_a.corrupt_traffic("sY", frames))
            if not np.isfinite(f.received).all()
        ]
        assert other != poisoned
        assert plan_a.injected["poison"] == len(poisoned) + len(other)


# ---------------------------------------------------------------------------
# degraded serving (circuit breaker) + hung jobs
# ---------------------------------------------------------------------------
class TestDegradedServing:
    def test_failing_retrains_degrade_but_never_stop_serving(self, qam16):
        """max_failures exceeded → DEGRADED: every accepted frame is still
        served on the last-good demapper, triggers stop escalating."""

        def boom(rng):
            raise InjectedRetrainError("no model for you")

        engine = ServingEngine(config=EngineConfig(
            supervisor=RetrainSupervisor(max_failures=2, backoff_base=1),
        ))
        session = engine.add_session(
            make_session(qam16, "s", retrain=boom, threshold=0.12)
        )
        frames = jump_traffic(qam16, 12, 6, step=2)
        offset = 0
        for _ in range(60):
            while offset < len(frames) and engine.submit("s", frames[offset]):
                offset += 1
            engine.step()
            if offset == len(frames) and session.pending == 0:
                break
        tele = engine.telemetry
        assert session.health == DEGRADED and session.state == SERVING
        assert session.stats.frames_served == len(frames)  # nothing lost
        assert session.stats.retrains == 0  # no install ever landed
        assert session.stats.retrain_failures == 2
        assert tele.retrain_failures == 2 and tele.sessions_degraded == 1
        assert tele.retrains_started == 2 and tele.retrains_retried == 1
        assert [r.action for r in tele.failure_log] == ["retry", "degrade"]
        assert [r.kind for r in tele.failure_log] == ["error", "error"]
        # breaker open: later triggers are recorded but never escalate
        started_before = tele.retrains_started
        assert session.stats.trigger_seqs  # the monitor did keep firing
        assert tele.retrains_started == started_before
        assert session.stats.health_timeline[-1][1] == DEGRADED
        snap = tele.snapshot()
        assert snap["sessions_degraded"] == 1
        assert [r["action"] for r in snap["failure_log"]] == ["retry", "degrade"]
        engine.close()

    def test_trigger_during_backoff_does_not_jump_the_queue(self, qam16):
        """Between failure and retry the session serves and may re-trigger;
        the supervisor must gate those triggers (no double-submit)."""

        calls = []

        def boom(rng):
            calls.append(1)
            raise InjectedRetrainError("boom")

        engine = ServingEngine(config=EngineConfig(
            supervisor=RetrainSupervisor(max_failures=10, backoff_base=4),
        ))
        session = engine.add_session(
            make_session(qam16, "s", retrain=boom, threshold=0.12)
        )
        frames = jump_traffic(qam16, 10, 6, step=1)
        offset = 0
        for _ in range(30):
            while offset < len(frames) and engine.submit("s", frames[offset]):
                offset += 1
            engine.step()
        # every submission was either the initial trigger or a due retry —
        # never a trigger racing a backoff
        assert len(calls) == engine.telemetry.retrains_started
        assert engine.telemetry.retrains_retried == len(calls) - 1
        assert session.health == HEALTHY  # max_failures=10: still retrying

    def test_hung_job_expires_at_deadline_and_degrades(self, qam16):
        release = threading.Event()

        def stuck(rng):
            release.wait(timeout=30)
            raise RuntimeError("released late")

        engine = ServingEngine(config=EngineConfig(
            retrain_workers=1,
            supervisor=RetrainSupervisor(max_failures=1, deadline_rounds=3),
        ))
        session = engine.add_session(
            make_session(qam16, "s", retrain=stuck, threshold=0.12)
        )
        frames = jump_traffic(qam16, 8, 6, step=2)
        offset = 0
        for _ in range(40):
            while offset < len(frames) and engine.submit("s", frames[offset]):
                offset += 1
            engine.step()
            if offset == len(frames) and session.pending == 0:
                break
        tele = engine.telemetry
        assert tele.retrains_hung == 1 and tele.retrain_failures == 1
        assert engine.worker.abandoned == 1
        assert session.health == DEGRADED
        assert session.stats.frames_served == len(frames)  # kept serving
        (record,) = tele.failure_log
        assert record.kind == "hung" and record.action == "degrade"
        release.set()
        t0 = time.monotonic()
        engine.close(timeout=5)
        assert time.monotonic() - t0 < 10

    def test_engine_drain_timeout_unwedges_a_hung_retrain(self, qam16):
        """drain(timeout=) abandons the stuck job, the supervisor degrades
        the session, and the drain completes — shutdown never wedges."""
        release = threading.Event()

        def stuck(rng):
            release.wait(timeout=30)
            raise RuntimeError("released late")

        engine = ServingEngine(config=EngineConfig(
            retrain_workers=1,
            supervisor=RetrainSupervisor(max_failures=1),  # no round deadline
        ))
        session = engine.add_session(
            make_session(qam16, "s", retrain=stuck, threshold=0.12)
        )
        for f in jump_traffic(qam16, 4, 6, step=1):
            engine.submit("s", f)
        t0 = time.monotonic()
        engine.drain(timeout=0.2)
        assert time.monotonic() - t0 < 30
        assert session.health == DEGRADED
        assert session.pending == 0
        assert engine.telemetry.retrains_hung == 1
        release.set()
        engine.close(timeout=5)

    def test_degraded_session_rearms_nothing_but_serves_cheap_tier(self, qam16):
        """Tracking still applies to a DEGRADED session (it is a SERVING
        session with retrain suppressed), mirroring the draining contract."""

        def boom(rng):
            raise InjectedRetrainError("boom")

        engine = ServingEngine(config=EngineConfig(
            supervisor=RetrainSupervisor(max_failures=1, backoff_base=1),
        ))
        session = engine.add_session(
            make_session(qam16, "s", retrain=boom, threshold=0.12, tracking=True)
        )
        frames = warp_traffic(qam16, 14, 6, step=2)
        offset = 0
        for _ in range(60):
            while offset < len(frames) and engine.submit("s", frames[offset]):
                offset += 1
            engine.step()
            if offset == len(frames) and session.pending == 0:
                break
        assert session.health == DEGRADED
        assert session.stats.frames_served == len(frames)
        # the ladder's track responses kept coming after the breaker opened
        retrain_seqs = [
            seq for seq, tier in session.stats.tier_timeline if tier == "retrain"
        ]
        post_degrade_tiers = [
            tier
            for seq, tier in session.stats.tier_timeline
            if seq > retrain_seqs[-1]
        ]
        assert post_degrade_tiers, "no triggers after the breaker opened"
        assert all(t == "track" for t in post_degrade_tiers)
        engine.close()


# ---------------------------------------------------------------------------
# chaos soak: churn + faults, conservation every round
# ---------------------------------------------------------------------------
class TestChaosSoak:
    """The PR 5 churn soak under a seeded fault storm: retrain exceptions,
    hangs, poison frames.  The engine must never raise; accepted ==
    served + dropped + quarantined (+ pending) must hold every round."""

    N_ROUNDS = 210
    MAX_FLEET = 10

    def run_soak(self, qam, seed, *, retrain_workers=0, max_batch=64):
        rng = np.random.default_rng(seed)
        plan = FaultPlan(
            seed=seed,
            fail_rate=0.30,
            hang_rate=0.10,
            poison_rate=0.02,
            blocking_hangs=retrain_workers > 0,
            hang_timeout=5.0,
        )
        engine = ServingEngine(config=EngineConfig(
            max_batch=max_batch,
            retrain_workers=retrain_workers,
            supervisor=RetrainSupervisor(
                max_failures=2,
                backoff_base=1,
                deadline_rounds=8 if retrain_workers else None,
            ),
        ))
        accepted: dict[str, int] = {}
        live: dict[str, dict] = {}
        all_sessions: list[DemapperSession] = []
        draining_ids: set[str] = set()
        hard_removed: list[str] = []
        next_id = 0

        def join():
            nonlocal next_id
            sid = f"c{next_id}"
            next_id += 1
            (srng,) = rng.spawn(1)
            jumpy = rng.random() < 0.5
            coded = CODED if rng.random() < 0.4 else None
            session = make_session(
                qam, sid, seed=int(rng.integers(2**31)), queue_depth=2,
                retrain=plan.wrap_retrain(sid, RotateStub(qam)) if jumpy else None,
                threshold=0.12 if jumpy else 0.9,
                weight=float(rng.choice([0.5, 1.0, 2.0])),
                coded=coded,
            )
            n_frames = int(rng.integers(8, 25))
            frames = (
                jump_traffic(qam, n_frames, srng, step=int(rng.integers(2, 6)),
                             coded=coded)
                if jumpy else clean_traffic(qam, n_frames, srng, coded=coded)
            )
            frames = plan.corrupt_traffic(sid, frames)
            engine.add_session(session)
            live[sid] = {"session": session, "frames": frames, "offset": 0}
            accepted[sid] = 0
            all_sessions.append(session)

        for _ in range(4):
            join()

        for r in range(self.N_ROUNDS):
            op = rng.random()
            if op < 0.12 and len(live) < self.MAX_FLEET:
                join()
            elif op < 0.18 and len(live) > 2:
                sid = str(rng.choice(sorted(set(live) - draining_ids) or sorted(live)))
                if sid not in draining_ids:
                    engine.remove_session(sid, drain=True)
                    draining_ids.add(sid)
            elif op < 0.22 and len(live) > 2:
                sid = str(rng.choice(sorted(live)))
                engine.remove_session(sid, drain=False)
                live.pop(sid)
                draining_ids.discard(sid)
                hard_removed.append(sid)
            for sid in sorted(set(live) - draining_ids):
                entry = live[sid]
                if entry["session"].health == QUARANTINED:
                    continue  # fenced off: further submits only count refusals
                for _ in range(int(rng.integers(0, 4))):
                    o = entry["offset"]
                    if o >= len(entry["frames"]):
                        break
                    if engine.submit(sid, entry["frames"][o]):
                        entry["offset"] = o + 1
                        accepted[sid] += 1
            engine.step()  # must never raise, whatever the storm does
            gone = [sid for sid in draining_ids
                    if all(s.session_id != sid for s in engine.sessions)]
            for sid in gone:
                draining_ids.discard(sid)
                live.pop(sid)
            # -- invariants, every round --------------------------------------
            live_ids = {s.session_id for s in engine.sessions}
            credits = engine.scheduler.credits()
            assert set(credits) <= live_ids, "credit leaked past a removal"
            for session in engine.sessions:
                sid = session.session_id
                st_ = session.stats
                assert (
                    st_.frames_served + st_.frames_dropped
                    + st_.frames_quarantined + session.pending
                    == accepted[sid]
                ), f"conservation broke for {sid} at round {r}"
                if session.config.coded is not None:
                    # CRC-fail frames are served-with-decode-failure: every
                    # served frame was decoded, failures never leave the
                    # served leg of the ledger (and never join dropped)
                    assert st_.frames_decoded == st_.frames_served, (
                        f"decode ledger broke for {sid} at round {r}"
                    )
                    assert st_.crc_failures <= st_.frames_decoded
                    assert len(st_.crc_fail_seqs) == st_.crc_failures
                else:
                    assert st_.frames_decoded == 0 and st_.crc_failures == 0
                if session.health == QUARANTINED:
                    assert not session.ready
                    assert sid not in credits
                if session.health == DEGRADED:
                    assert session.state == SERVING or session.pending >= 0

        plan.release_hangs()
        for sid in sorted(set(live) - draining_ids):
            engine.remove_session(sid, drain=True)
        engine.drain(max_rounds=10_000, timeout=2.0)
        engine.close(timeout=5.0)
        return engine, accepted, all_sessions, plan

    @pytest.mark.parametrize("retrain_workers", [0, 2])
    def test_soak_survives_the_storm_with_conservation(
        self, qam16, retrain_workers
    ):
        engine, accepted, sessions, plan = self.run_soak(
            qam16, seed=2027, retrain_workers=retrain_workers
        )
        tele = engine.telemetry
        # the storm actually stormed
        assert plan.injected["fail"] > 0
        assert plan.injected["hang"] > 0
        assert plan.injected["poison"] > 0
        assert tele.retrain_failures > 0
        assert tele.retrains_hung > 0
        assert tele.sessions_degraded > 0
        assert tele.sessions_quarantined > 0
        assert tele.frames_quarantined > 0
        assert len(tele.failure_log) == tele.retrain_failures + tele.sessions_quarantined
        # fleet-wide conservation at the end: every accepted frame is
        # served, dropped (hard removal) or quarantined — none vanished
        total_accepted = sum(accepted.values())
        total_served = sum(s.stats.frames_served for s in sessions)
        total_dropped = sum(s.stats.frames_dropped for s in sessions)
        total_quarantined = sum(s.stats.frames_quarantined for s in sessions)
        assert all(s.pending == 0 for s in sessions)
        assert total_accepted == total_served + total_dropped + total_quarantined
        assert total_served == tele.frames_served
        assert total_quarantined == tele.frames_quarantined
        # coded traffic rode through the storm: decode counters reconcile
        # and CRC failures stayed on the served leg of the ledger
        coded_sessions = [s for s in sessions if s.config.coded is not None]
        assert coded_sessions, "no coded session ever joined the soak"
        assert tele.frames_decoded == sum(
            s.stats.frames_decoded for s in sessions
        )
        assert tele.crc_failures == sum(s.stats.crc_failures for s in sessions)
        assert tele.frames_decoded == sum(
            s.stats.frames_served for s in coded_sessions
        )
        assert tele.crc_failures > 0  # the storm broke some payloads too
        # degraded sessions were never paused forever: each one's ledger
        # closes (everything it accepted was served or fenced)
        for s in sessions:
            if s.health == DEGRADED:
                assert s.stats.frames_served > 0
        assert engine.scheduler.credits() == {}
        assert engine.worker.pending == 0

    def test_soak_is_deterministic(self, qam16):
        a = self.run_soak(qam16, seed=11)[0].telemetry.snapshot()
        b = self.run_soak(qam16, seed=11)[0].telemetry.snapshot()
        assert a == b


# ---------------------------------------------------------------------------
# fault isolation: fault-free sessions bit-identical to a no-fault run
# ---------------------------------------------------------------------------
class TestFaultIsolation:
    """The determinism contract's fault-isolation clause: a fault-free
    session's LLR stream and σ²/trigger/tier timelines are bit-identical
    whether or not a fault storm rages around it — at every batch width
    and worker count."""

    N_FRAMES = 14

    def watch_traffic(self, qam):
        return jump_traffic(qam, self.N_FRAMES, 4242, step=6)

    def run(self, qam, *, faulted, max_batch=64, retrain_workers=0):
        llrs: list[np.ndarray] = []
        engine = ServingEngine(config=EngineConfig(
            max_batch=max_batch,
            retrain_workers=retrain_workers,
            supervisor=RetrainSupervisor(max_failures=2, backoff_base=1),
            on_frame=lambda s, f, block, rep: (
                llrs.append(block.copy()) if s.session_id == "watch" else None
            ),
        ))
        plan = FaultPlan(
            seed=77,
            fail_sessions=("f-fail",),
            hang_sessions=("f-hang",),
            poison_sessions=("f-poison",),
            poison_rate=0.35,
            blocking_hangs=retrain_workers > 0,
            hang_timeout=1.0,
        )
        watch = make_session(
            qam, "watch", seed=1234, queue_depth=3,
            retrain=RotateStub(qam), threshold=0.12, tracking=True,
        )
        engine.add_session(watch)
        storm: dict[str, list] = {}
        for sid in ("f-fail", "f-hang", "f-poison", "f-clean"):
            retrain = RotateStub(qam) if sid != "f-poison" else None
            if faulted:
                retrain = plan.wrap_retrain(sid, retrain)
            engine.add_session(
                make_session(
                    qam, sid, seed=hash(sid) % 2**31, queue_depth=3,
                    retrain=retrain, threshold=0.12,
                )
            )
            frames = jump_traffic(qam, 18, abs(hash(sid)) % 2**31, step=3)
            if faulted:
                frames = plan.corrupt_traffic(sid, frames)
            storm[sid] = [frames, 0]
        frames = self.watch_traffic(qam)
        offset = 0
        guard = 0
        while watch.stats.frames_served < self.N_FRAMES:
            guard += 1
            assert guard < 2000, "watched session starved"
            for sid, entry in storm.items():
                if engine.session(sid).health == QUARANTINED:
                    continue
                while entry[1] < len(entry[0]) and engine.submit(
                    sid, entry[0][entry[1]]
                ):
                    entry[1] += 1
            while offset < len(frames) and engine.submit("watch", frames[offset]):
                offset += 1
            engine.step()
            if watch.state == RETRAINING and engine.worker.pending:
                # poll-wait for the watch swap without blocking on a
                # possibly-hung storm job
                time.sleep(0.002)
        plan.release_hangs()
        engine.close(timeout=5)
        if faulted:
            assert engine.telemetry.retrain_failures > 0, "storm was a no-op"
            assert engine.telemetry.sessions_quarantined >= 1
        timeline = (
            tuple(watch.stats.trigger_seqs),
            tuple(watch.stats.tier_timeline),
            tuple(watch.stats.sigma2_trajectory),
            watch.stats.retrains,
            watch.stats.tracks,
            tuple(watch.stats.health_timeline),
        )
        return llrs, timeline

    @pytest.fixture(scope="class")
    def reference(self, qam16):
        """The same fleet, no faults, sequential batches, inline worker."""
        return self.run(qam16, faulted=False, max_batch=1)

    def assert_identical(self, run, reference):
        llrs, timeline = run
        ref_llrs, ref_timeline = reference
        assert timeline == ref_timeline
        assert len(llrs) == len(ref_llrs) == self.N_FRAMES
        for got, ref in zip(llrs, ref_llrs):
            assert np.array_equal(got, ref)

    def test_reference_scenario_adapts(self, reference):
        _, timeline = reference
        assert timeline[0], "watched session's monitor never fired"
        assert timeline[5] == (), "watched session must stay HEALTHY"

    @pytest.mark.parametrize("max_batch", [1, 64])
    def test_invariant_to_fault_storm(self, qam16, reference, max_batch):
        self.assert_identical(
            self.run(qam16, faulted=True, max_batch=max_batch), reference
        )

    @pytest.mark.parametrize("retrain_workers", [2])
    def test_invariant_to_worker_count_under_faults(
        self, qam16, reference, retrain_workers
    ):
        self.assert_identical(
            self.run(qam16, faulted=True, retrain_workers=retrain_workers),
            reference,
        )
