"""Deficit-round-robin scheduling: QoS weights, credit accounting, engine
waves, credit-safety properties, and the SLO-driven weight controller."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import sigma2_from_snr
from repro.extraction import HybridDemapper
from repro.extraction.monitor import DegradationMonitor
from repro.link.frames import FrameConfig, build_frame
from repro.modulation import qam_constellation
from repro.serving import (
    EngineConfig,
    HEALTHY,
    DeficitRoundRobin,
    DemapperSession,
    ServingEngine,
    ServingFrame,
    SessionConfig,
    WeightController,
)

SIGMA2 = sigma2_from_snr(8.0, 4)


def make_frame(seq, order=16, n=32, rng=None):
    rng = np.random.default_rng(seq if rng is None else rng)
    f = build_frame(FrameConfig(pilot_symbols=8, payload_symbols=n - 8), order, rng)
    y = rng.normal(size=n) + 1j * rng.normal(size=n)
    return ServingFrame(seq=seq, indices=f.indices, pilot_mask=f.pilot_mask, received=y)


def make_session(sid="s0", *, weight=1.0, queue_depth=16, const=None):
    const = const if const is not None else qam_constellation(16)
    return DemapperSession(
        sid,
        HybridDemapper(constellation=const, sigma2=SIGMA2),
        DegradationMonitor(0.9, window=64),  # effectively never fires
        config=SessionConfig(queue_depth=queue_depth, weight=weight),
        rng=0,
    )


def fill(session, n_frames, start=0):
    for seq in range(start, start + n_frames):
        assert session.submit(make_frame(seq))


class TestDeficitRoundRobin:
    def test_uniform_weights_degenerate_to_round_robin(self):
        drr = DeficitRoundRobin()
        sessions = [make_session(f"s{i}") for i in range(3)]
        for s in sessions:
            fill(s, 2)
        assert drr.allocate(sessions) == {"s0": 1, "s1": 1, "s2": 1}
        assert drr.allocate(sessions) == {"s0": 1, "s1": 1, "s2": 1}

    def test_heavy_session_takes_multiple_frames(self):
        drr = DeficitRoundRobin()
        heavy, light = make_session("h", weight=3.0), make_session("l")
        fill(heavy, 9)
        fill(light, 9)
        assert drr.allocate([heavy, light]) == {"h": 3, "l": 1}

    def test_fractional_weight_serves_every_other_round(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=0.5)
        fill(s, 4)
        quotas = [drr.allocate([s]).get("s", 0) for _ in range(4)]
        # credit 0.5 -> 0 frames, 1.0 -> 1 frame, repeat
        assert quotas == [0, 1, 0, 1]

    def test_quota_capped_by_pending(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=5.0)
        fill(s, 2)
        assert drr.allocate([s]) == {"s": 2}
        # queue emptied by the allocation: surplus credit is forfeited
        assert drr.credit("s") == 0.0

    def test_idle_session_forfeits_credit(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=0.5)
        fill(s, 1)
        assert drr.allocate([s]) == {}  # 0.5 credit carried while backlogged
        assert drr.credit("s") == 0.5
        s.pop()  # queue empties outside the scheduler
        assert drr.allocate([s]) == {}  # not ready: credit dropped
        assert drr.credit("s") == 0.0
        fill(s, 4, start=1)
        # back to backlogged: accrual restarts from zero — no stale burst
        assert drr.allocate([s]) == {}
        assert drr.allocate([s]) == {"s": 1}

    def test_retraining_session_accrues_nothing(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=2.0)
        fill(s, 4)
        assert drr.allocate([s]) == {"s": 2}
        s.begin_retrain()
        assert drr.allocate([s]) == {}  # paused: not backlogged
        assert drr.credit("s") == 0.0

    def test_forget_drops_credit(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=0.5)
        fill(s, 1)
        drr.allocate([s])
        drr.forget("s")
        assert drr.credit("s") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0.0)
        with pytest.raises(ValueError):
            DeficitRoundRobin(burst=0.5)
        with pytest.raises(ValueError):
            SessionConfig(weight=0.0)
        with pytest.raises(ValueError):
            SessionConfig(weight=float("inf"))
        with pytest.raises(ValueError):
            # below the documented floor: a 1e-9-weight session would turn
            # the engine's drain loop into a ~1e9-round busy spin
            SessionConfig(weight=0.001)
        SessionConfig(weight=0.01)  # the floor itself is valid


class FakeSession:
    """The duck type ``DeficitRoundRobin.allocate`` reads: id, live weight,
    queue depth, pause flag, health.  Keeps the hypothesis properties fast."""

    def __init__(self, sid, weight, pending=0):
        self.session_id = sid
        self.weight = weight
        self.pending = pending
        self.paused = False
        self.health = HEALTHY

    @property
    def ready(self):
        return not self.paused and self.pending > 0


#: One randomized round of queue churn per session: (pending, paused).
ROUND = st.tuples(st.integers(min_value=0, max_value=10), st.booleans())
WEIGHTS = st.floats(min_value=0.01, max_value=8.0, allow_nan=False)


class TestDRRProperties:
    """Credit-safety invariants under adversarial queue churn (hypothesis)."""

    @settings(max_examples=60, deadline=None)
    @given(
        quantum=st.floats(min_value=0.25, max_value=4.0),
        burst=st.floats(min_value=1.0, max_value=4.0),
        weights=st.lists(WEIGHTS, min_size=1, max_size=4),
        rounds=st.lists(st.lists(ROUND, min_size=1, max_size=4), min_size=1, max_size=25),
    )
    def test_credit_never_exceeds_burst_cap(self, quantum, burst, weights, rounds):
        """Stored credit is bounded by ``max(quantum, burst·quantum·weight)``
        no matter how queues fill, empty, or flap around the allocator."""
        drr = DeficitRoundRobin(quantum, burst=burst)
        sessions = [FakeSession(f"s{i}", w) for i, w in enumerate(weights)]
        for state in rounds:
            for session, (pending, paused) in zip(sessions, state):
                session.pending = pending
                session.paused = paused
            quotas = drr.allocate(sessions)
            for session in sessions:
                # a quota is immediately backed by pending frames
                assert quotas.get(session.session_id, 0) <= session.pending
                cap = max(1.0, burst * quantum * session.weight)
                assert 0.0 <= drr.credit(session.session_id) <= cap + 1e-12
            assert set(drr.credits()) <= {s.session_id for s in sessions}

    @settings(max_examples=60, deadline=None)
    @given(
        quantum=st.floats(min_value=0.25, max_value=4.0),
        weight=WEIGHTS,
        competitors=st.lists(WEIGHTS, min_size=0, max_size=4),
    )
    def test_backlogged_session_never_starves(self, quantum, weight, competitors):
        """A continuously backlogged session never goes unserved beyond
        ``ceil(1/(quantum·weight))`` consecutive rounds regardless of the
        competition — DRR's bounded-delay guarantee at frame granularity.
        The ``quantum < 1`` axis pins the burst-cap floor of one whole
        frame: a cap below that would freeze slow-accrual sessions forever.
        (The bound is inclusive: summing accrual in floats can land a hair
        under 1.0 on the exact boundary round, e.g. 10 × 0.1.)
        """
        drr = DeficitRoundRobin(quantum)
        watched = FakeSession("w", weight, pending=5)
        others = [FakeSession(f"o{i}", w, pending=5) for i, w in enumerate(competitors)]
        bound = math.ceil(1.0 / (quantum * weight))
        gap = 0
        for _ in range(3 * bound + 10):
            quotas = drr.allocate([watched, *others])
            served = quotas.get("w", 0)
            watched.pending += 1 - served  # producer refills: always backlogged
            for o in others:
                o.pending += 1 - quotas.get(o.session_id, 0)
            gap = 0 if served else gap + 1
            assert gap <= bound, (
                f"starved {gap} rounds at quantum {quantum} weight {weight}"
            )

    @settings(max_examples=40, deadline=None)
    @given(weight=WEIGHTS, accrue_rounds=st.integers(min_value=1, max_value=10))
    def test_forget_then_readmit_starts_from_zero_credit(self, weight, accrue_rounds):
        """``forget`` wipes banked credit: a session re-admitted under the
        same id accrues exactly like a brand-new one, round for round."""
        drr = DeficitRoundRobin()
        fresh = DeficitRoundRobin()
        session = FakeSession("s", weight, pending=100)
        for _ in range(accrue_rounds):
            drr.allocate([session])
        drr.forget("s")
        assert drr.credit("s") == 0.0
        twin = FakeSession("s", weight, pending=100)
        for _ in range(accrue_rounds):
            a = drr.allocate([session])
            b = fresh.allocate([twin])
            assert a == b
            assert drr.credit("s") == fresh.credit("s")


class TestWeightController:
    def make_session(self, sid="s0", *, weight=1.0):
        return make_session(sid, weight=weight)

    def record_waits(self, session, *waits):
        for w in waits:
            session.stats.queue_wait.record(w)

    def test_missed_slo_boosts_and_recovery_decays_to_base(self):
        ctl = WeightController(slo=100, interval=1, raise_factor=2.0, decay=0.5)
        s = self.make_session()
        self.record_waits(s, 400, 400)
        assert ctl.on_round([s], now=10) == 1
        assert s.weight == 2.0
        assert s.stats.weight_timeline == [(10, 2.0)]
        self.record_waits(s, 400)          # still missing: compounds
        ctl.on_round([s], now=20)
        assert s.weight == 4.0
        self.record_waits(s, 10)           # healthy: geometric decay to base
        ctl.on_round([s], now=30)
        assert s.weight == 1.0 + 0.5 * 3.0
        for now in (40, 50, 60, 70, 80, 90, 100, 110, 120, 130):
            self.record_waits(s, 10)
            ctl.on_round([s], now=now)
        assert s.weight == 1.0  # snapped exactly back to the base contract
        assert s.stats.weight_timeline[-1][1] == 1.0
        # once snapped, healthy rounds emit no further weight events
        n_events = len(s.stats.weight_timeline)
        self.record_waits(s, 10)
        ctl.on_round([s], now=140)
        assert len(s.stats.weight_timeline) == n_events

    def test_boost_capped_at_max_boost_times_base(self):
        ctl = WeightController(slo=1, interval=1, raise_factor=10.0, max_boost=4.0)
        s = self.make_session(weight=2.0)
        for _ in range(5):
            self.record_waits(s, 1000)
            ctl.on_round([s])
        assert s.weight == 2.0 * 4.0

    def test_idle_session_decays_instead_of_boosting(self):
        """No frames served in the window = no evidence of pressure: a
        previously boosted session releases its boost while idle."""
        ctl = WeightController(slo=10, interval=1, raise_factor=2.0, decay=0.0)
        s = self.make_session()
        self.record_waits(s, 1000)
        ctl.on_round([s])
        assert s.weight == 2.0
        ctl.on_round([s])  # no new observations since the mark
        assert s.weight == 1.0

    def test_interval_gates_control_actions(self):
        ctl = WeightController(slo=10, interval=3, raise_factor=2.0)
        s = self.make_session()
        self.record_waits(s, 1000)
        assert ctl.on_round([s]) == 0
        assert ctl.on_round([s]) == 0
        assert ctl.on_round([s]) == 1  # every 3rd round acts
        assert s.weight == 2.0

    def test_forget_drops_marks_for_departed_sessions(self):
        ctl = WeightController(slo=10, interval=1)
        s = self.make_session()
        self.record_waits(s, 1000)
        ctl.on_round([s])
        ctl.forget(s.session_id)
        assert ctl._marks == {}
        # pruning also happens for sessions that simply vanish
        self.record_waits(s, 1000)
        ctl.on_round([s])
        ctl.on_round([])
        assert ctl._marks == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightController(slo=0)
        with pytest.raises(ValueError):
            WeightController(slo=10, interval=0)
        with pytest.raises(ValueError):
            WeightController(slo=10, raise_factor=1.0)
        with pytest.raises(ValueError):
            WeightController(slo=10, decay=1.0)
        with pytest.raises(ValueError):
            WeightController(slo=10, max_boost=0.5)

    def test_set_weight_floor_and_timeline(self):
        s = self.make_session()
        assert s.set_weight(1e-6, now=3) == 0.01  # clamped to the DRR floor
        assert s.stats.weight_timeline == [(3, 0.01)]
        assert s.set_weight(0.01, now=4) == 0.01  # unchanged: no event
        assert len(s.stats.weight_timeline) == 1
        with pytest.raises(ValueError):
            s.set_weight(float("nan"))


class TestAdaptiveWeightsInEngine:
    """End-to-end: the controller steers a backlogged session's share."""

    def build(self, *, controller):
        engine = ServingEngine(config=EngineConfig(weight_controller=controller))
        qam = qam_constellation(16)
        hot = engine.add_session(make_session("hot", queue_depth=16, const=qam))
        cold = engine.add_session(make_session("cold", queue_depth=16, const=qam))
        return engine, hot, cold

    def submit(self, engine, session, n_frames, start=0):
        """Engine-clocked submission (direct ``session.submit`` would stamp
        tick 0 and fake huge queue waits)."""
        for seq in range(start, start + n_frames):
            assert engine.submit(session.session_id, make_frame(seq))

    def serve_backlog(self, engine, hot, cold, rounds=14):
        self.submit(engine, hot, 16)
        self.submit(engine, cold, 2)
        order = []
        for r in range(rounds):
            if cold.pending == 0:
                self.submit(engine, cold, 1, start=100 + r)  # lightly loaded
            served = engine.step()
            order.append((served, hot.weight))
        return order

    def test_backlogged_session_gets_boosted_and_decays_back(self):
        # decay=0: a single healthy control window releases the whole boost
        controller = WeightController(
            slo=32 * 4, interval=2, raise_factor=2.0, decay=0.0
        )
        engine, hot, cold = self.build(controller=controller)
        trace = self.serve_backlog(engine, hot, cold)
        peak = max(w for _, w in trace)
        assert peak > 1.0, "hot session never boosted despite missing its SLO"
        assert hot.stats.weight_timeline, "no weight event recorded"
        engine.drain()
        # with the backlog gone and the SLO met, the boost is released
        for seq in range(200, 230):
            self.submit(engine, hot, 1, start=seq)
            engine.step()
        assert hot.weight == 1.0
        # outputs stay weight-invariant: the cold session was never starved
        assert cold.stats.frames_served > 0

    def test_adaptive_weights_are_deterministic(self):
        def run():
            controller = WeightController(slo=32 * 4, interval=2, raise_factor=2.0)
            engine, hot, cold = self.build(controller=controller)
            self.serve_backlog(engine, hot, cold)
            return hot.stats.weight_timeline, cold.stats.weight_timeline

        assert run() == run()


class TestWeightedEngineRounds:
    def test_weighted_round_serves_proportionally_in_order(self):
        served = []
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: served.append((s.session_id, f.seq))
        ))
        qam = qam_constellation(16)
        heavy = engine.add_session(make_session("h", weight=3.0, const=qam))
        light = engine.add_session(make_session("l", weight=1.0, const=qam))
        fill(heavy, 6)
        fill(light, 6)
        assert engine.step() == 4  # 3 heavy + 1 light
        assert [sid for sid, _ in served].count("h") == 3
        # per-session frame order is preserved across waves
        assert [seq for sid, seq in served if sid == "h"] == [0, 1, 2]
        assert engine.step() == 4
        assert heavy.pending == 0 and light.pending == 4

    def test_waves_batch_across_sessions_each_wave(self):
        """Wave 0 coalesces every scheduled session; later waves hold only
        the heavy sessions' extra frames."""
        engine = ServingEngine()
        qam = qam_constellation(16)
        for i, w in enumerate([2.0, 2.0, 1.0]):
            s = engine.add_session(make_session(f"s{i}", weight=w, const=qam))
            fill(s, 4)
        assert engine.step() == 5
        assert engine.telemetry.occupancy == {3: 1, 2: 1}

    def test_all_weights_one_matches_legacy_round(self):
        engine = ServingEngine()
        qam = qam_constellation(16)
        for i in range(4):
            s = engine.add_session(make_session(f"s{i}", const=qam))
            fill(s, 2)
        assert engine.step() == 4  # exactly one frame per session per round
        assert engine.telemetry.occupancy == {4: 1}
        assert all(s.pending == 1 for s in engine.sessions)