"""Deficit-round-robin scheduling: QoS weights, credit accounting, engine waves."""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.extraction import HybridDemapper
from repro.extraction.monitor import DegradationMonitor
from repro.link.frames import FrameConfig, build_frame
from repro.modulation import qam_constellation
from repro.serving import (
    DeficitRoundRobin,
    DemapperSession,
    ServingEngine,
    ServingFrame,
    SessionConfig,
)

SIGMA2 = sigma2_from_snr(8.0, 4)


def make_frame(seq, order=16, n=32, rng=None):
    rng = np.random.default_rng(seq if rng is None else rng)
    f = build_frame(FrameConfig(pilot_symbols=8, payload_symbols=n - 8), order, rng)
    y = rng.normal(size=n) + 1j * rng.normal(size=n)
    return ServingFrame(seq=seq, indices=f.indices, pilot_mask=f.pilot_mask, received=y)


def make_session(sid="s0", *, weight=1.0, queue_depth=16, const=None):
    const = const if const is not None else qam_constellation(16)
    return DemapperSession(
        sid,
        HybridDemapper(constellation=const, sigma2=SIGMA2),
        DegradationMonitor(0.9, window=64),  # effectively never fires
        config=SessionConfig(queue_depth=queue_depth, weight=weight),
        rng=0,
    )


def fill(session, n_frames, start=0):
    for seq in range(start, start + n_frames):
        assert session.submit(make_frame(seq))


class TestDeficitRoundRobin:
    def test_uniform_weights_degenerate_to_round_robin(self):
        drr = DeficitRoundRobin()
        sessions = [make_session(f"s{i}") for i in range(3)]
        for s in sessions:
            fill(s, 2)
        assert drr.allocate(sessions) == {"s0": 1, "s1": 1, "s2": 1}
        assert drr.allocate(sessions) == {"s0": 1, "s1": 1, "s2": 1}

    def test_heavy_session_takes_multiple_frames(self):
        drr = DeficitRoundRobin()
        heavy, light = make_session("h", weight=3.0), make_session("l")
        fill(heavy, 9)
        fill(light, 9)
        assert drr.allocate([heavy, light]) == {"h": 3, "l": 1}

    def test_fractional_weight_serves_every_other_round(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=0.5)
        fill(s, 4)
        quotas = [drr.allocate([s]).get("s", 0) for _ in range(4)]
        # credit 0.5 -> 0 frames, 1.0 -> 1 frame, repeat
        assert quotas == [0, 1, 0, 1]

    def test_quota_capped_by_pending(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=5.0)
        fill(s, 2)
        assert drr.allocate([s]) == {"s": 2}
        # queue emptied by the allocation: surplus credit is forfeited
        assert drr.credit("s") == 0.0

    def test_idle_session_forfeits_credit(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=0.5)
        fill(s, 1)
        assert drr.allocate([s]) == {}  # 0.5 credit carried while backlogged
        assert drr.credit("s") == 0.5
        s.pop()  # queue empties outside the scheduler
        assert drr.allocate([s]) == {}  # not ready: credit dropped
        assert drr.credit("s") == 0.0
        fill(s, 4, start=1)
        # back to backlogged: accrual restarts from zero — no stale burst
        assert drr.allocate([s]) == {}
        assert drr.allocate([s]) == {"s": 1}

    def test_retraining_session_accrues_nothing(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=2.0)
        fill(s, 4)
        assert drr.allocate([s]) == {"s": 2}
        s.begin_retrain()
        assert drr.allocate([s]) == {}  # paused: not backlogged
        assert drr.credit("s") == 0.0

    def test_forget_drops_credit(self):
        drr = DeficitRoundRobin()
        s = make_session("s", weight=0.5)
        fill(s, 1)
        drr.allocate([s])
        drr.forget("s")
        assert drr.credit("s") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0.0)
        with pytest.raises(ValueError):
            SessionConfig(weight=0.0)
        with pytest.raises(ValueError):
            SessionConfig(weight=float("inf"))
        with pytest.raises(ValueError):
            # below the documented floor: a 1e-9-weight session would turn
            # the engine's drain loop into a ~1e9-round busy spin
            SessionConfig(weight=0.001)
        SessionConfig(weight=0.01)  # the floor itself is valid


class TestWeightedEngineRounds:
    def test_weighted_round_serves_proportionally_in_order(self):
        served = []
        engine = ServingEngine(
            on_frame=lambda s, f, llrs, rep: served.append((s.session_id, f.seq))
        )
        qam = qam_constellation(16)
        heavy = engine.add_session(make_session("h", weight=3.0, const=qam))
        light = engine.add_session(make_session("l", weight=1.0, const=qam))
        fill(heavy, 6)
        fill(light, 6)
        assert engine.step() == 4  # 3 heavy + 1 light
        assert [sid for sid, _ in served].count("h") == 3
        # per-session frame order is preserved across waves
        assert [seq for sid, seq in served if sid == "h"] == [0, 1, 2]
        assert engine.step() == 4
        assert heavy.pending == 0 and light.pending == 4

    def test_waves_batch_across_sessions_each_wave(self):
        """Wave 0 coalesces every scheduled session; later waves hold only
        the heavy sessions' extra frames."""
        engine = ServingEngine()
        qam = qam_constellation(16)
        for i, w in enumerate([2.0, 2.0, 1.0]):
            s = engine.add_session(make_session(f"s{i}", weight=w, const=qam))
            fill(s, 4)
        assert engine.step() == 5
        assert engine.telemetry.occupancy == {3: 1, 2: 1}

    def test_all_weights_one_matches_legacy_round(self):
        engine = ServingEngine()
        qam = qam_constellation(16)
        for i in range(4):
            s = engine.add_session(make_session(f"s{i}", const=qam))
            fill(s, 2)
        assert engine.step() == 4  # exactly one frame per session per round
        assert engine.telemetry.occupancy == {4: 1}
        assert all(s.pending == 1 for s in engine.sessions)