"""Session churn: joins, drains, hard removals — under load, deterministically.

Four layers of coverage:

* **removal semantics** — drain vs hard removal, retrain interactions
  (orphaned jobs), scheduler ``forget`` exactly once, churn telemetry;
* **churn loadgen** — ``SessionPlan`` / ``run_churn_load`` arrival and
  departure schedules;
* **soak** — a seeded randomized run of 200+ rounds mixing joins, drains,
  hard removals, retrain triggers, adaptive weights and backpressure,
  asserting the conservation invariants that make churn safe: a drained
  session loses no accepted frame, ``accepted == served + dropped`` fleet
  wide, and the scheduler leaks no credit for departed sessions;
* **survivor invariance** — the determinism contract extended to churn: a
  surviving session's LLR stream and σ²/trigger/tier timelines are
  bit-identical whichever churn storm happens around it, at any batch
  width and worker count.
"""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.channels.factories import AWGNFactory, CompositeFactory, PhaseOffsetFactory
from repro.extraction import HybridDemapper
from repro.extraction.monitor import PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.modulation import qam_constellation
from repro.serving import (
    EngineConfig,
    RETRAINING,
    DeficitRoundRobin,
    DemapperSession,
    ServingEngine,
    SessionConfig,
    SessionPlan,
    SteadyChannel,
    SteppedChannel,
    WeightController,
    generate_traffic,
    run_churn_load,
)

S10 = sigma2_from_snr(10.0, 4)
FC = FrameConfig(pilot_symbols=8, payload_symbols=24)
OFFSET = np.pi / 4


@pytest.fixture(scope="module")
def qam16():
    return qam_constellation(16)


class RotateStub:
    """Deterministic-in-rng retrain stand-in (the determinism-suite canary):
    corrected centroids plus an rng-drawn jitter, so a reused or reordered
    job generator would change outputs."""

    def __init__(self, qam, angle=OFFSET):
        self.qam = qam
        self.angle = angle

    def __call__(self, rng):
        angle = self.angle + rng.normal(scale=1e-3)
        return HybridDemapper(
            constellation=type(self.qam)(points=self.qam.points * np.exp(1j * angle)),
            sigma2=S10,
        )


def make_session(qam, sid, *, seed=0, queue_depth=4, retrain=None, weight=1.0,
                 threshold=0.9, tracking=False):
    return DemapperSession(
        sid,
        HybridDemapper(constellation=qam, sigma2=S10),
        PilotBERMonitor(threshold, window=2, cooldown=2),
        config=SessionConfig(
            frame=FC, queue_depth=queue_depth, weight=weight,
            sigma2_alpha=0.25, tracking=tracking,
        ),
        retrain=retrain,
        rng=seed,
    )


def clean_traffic(qam, n_frames, seed, *, snr=10.0):
    return generate_traffic(qam, FC, n_frames, SteadyChannel(AWGNFactory(snr, 4)), seed)


def jump_traffic(qam, n_frames, seed, *, step=4):
    chan = SteppedChannel(
        AWGNFactory(10.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(10.0, 4))),
        step_seq=step,
    )
    return generate_traffic(qam, FC, n_frames, chan, seed)


class ForgetSpy(DeficitRoundRobin):
    """Counts ``forget`` calls per session id (must be exactly one per leave)."""

    def __init__(self):
        super().__init__()
        self.forgotten: dict[str, int] = {}

    def forget(self, session_id):
        self.forgotten[session_id] = self.forgotten.get(session_id, 0) + 1
        super().forget(session_id)


class TestRemoveSession:
    def test_drained_session_serves_accepted_frames_then_leaves(self, qam16):
        served = []
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: served.append((s.session_id, f.seq))
        ))
        session = engine.add_session(make_session(qam16, "leaver", seed=1))
        frames = clean_traffic(qam16, 3, 5)
        for f in frames:
            assert engine.submit("leaver", f)
        assert engine.remove_session("leaver", drain=True) == 0
        # draining: no new submissions, but every accepted frame is served
        assert not engine.submit("leaver", frames[0])
        assert session.stats.drain_refusals == 1
        assert session.stats.rejects == 0  # a drain refusal is not backpressure
        engine.drain()
        assert [seq for _, seq in served] == [0, 1, 2]
        assert session.stats.frames_served == 3
        assert session.stats.frames_dropped == 0
        with pytest.raises(KeyError):
            engine.session("leaver")
        tele = engine.telemetry
        assert tele.drains_started == tele.drains_completed == 1
        assert tele.joins == 1 and tele.leaves == 1
        assert tele.frames_dropped == 0

    def test_drain_is_idempotent(self, qam16):
        engine = ServingEngine()
        engine.add_session(make_session(qam16, "s0"))
        engine.submit("s0", clean_traffic(qam16, 1, 2)[0])
        engine.remove_session("s0", drain=True)
        engine.remove_session("s0", drain=True)  # no-op, not an error
        assert engine.telemetry.drains_started == 1
        engine.drain()
        assert engine.telemetry.drains_completed == 1

    def test_drain_of_empty_session_removes_immediately(self, qam16):
        engine = ServingEngine()
        engine.add_session(make_session(qam16, "idle"))
        engine.remove_session("idle", drain=True)
        assert engine.sessions == ()  # nothing to serve: gone at once
        assert engine.telemetry.drains_completed == 1

    def test_hard_removal_drops_queue_and_reports_count(self, qam16):
        engine = ServingEngine()
        session = engine.add_session(make_session(qam16, "s0"))
        for f in clean_traffic(qam16, 3, 7):
            engine.submit("s0", f)
        dropped = engine.remove_session("s0", drain=False)
        assert dropped == 3
        assert session.stats.frames_dropped == 3
        assert engine.telemetry.frames_dropped == 3
        assert engine.telemetry.leaves == 1
        assert engine.telemetry.drains_started == 0
        assert engine.sessions == ()

    def test_remove_unknown_session_raises_keyerror(self, qam16):
        engine = ServingEngine()
        with pytest.raises(KeyError, match="ghost"):
            engine.remove_session("ghost")

    def test_fleet_timeline_tracks_joins_and_leaves(self, qam16):
        engine = ServingEngine()
        engine.add_session(make_session(qam16, "a"))
        engine.add_session(make_session(qam16, "b"))
        engine.remove_session("a", drain=False)
        sizes = [size for _, size in engine.telemetry.fleet_timeline]
        assert sizes == [1, 2, 1]
        assert engine.telemetry.snapshot()["fleet_timeline"] == [(0, 1), (0, 2), (0, 1)]

    def test_forget_called_exactly_once_and_credit_dropped(self, qam16):
        spy = ForgetSpy()
        engine = ServingEngine(config=EngineConfig(scheduler=spy))
        engine.add_session(make_session(qam16, "drained", weight=0.5))
        engine.add_session(make_session(qam16, "hard", weight=0.5))
        for sid in ("drained", "hard"):
            for f in clean_traffic(qam16, 2, 3):
                engine.submit(sid, f)
        engine.step()  # both accrue fractional credit (weight .5: no serve yet)
        assert spy.credit("drained") == 0.5 and spy.credit("hard") == 0.5
        engine.remove_session("hard", drain=False)
        engine.remove_session("drained", drain=True)
        engine.drain()
        assert spy.forgotten == {"drained": 1, "hard": 1}
        assert spy.credits() == {}  # departed sessions leak nothing

    def test_session_id_reusable_after_removal(self, qam16):
        engine = ServingEngine()
        engine.add_session(make_session(qam16, "s0"))
        engine.remove_session("s0", drain=False)
        fresh = engine.add_session(make_session(qam16, "s0", seed=9))
        assert engine.session("s0") is fresh
        assert engine.telemetry.joins == 2 and engine.telemetry.leaves == 1

    def test_adding_a_draining_session_is_rejected(self, qam16):
        engine = ServingEngine()
        session = make_session(qam16, "s0")
        session.draining = True
        with pytest.raises(ValueError, match="draining"):
            engine.add_session(session)

    def test_draining_session_never_escalates_to_retrain(self, qam16):
        engine = ServingEngine()
        session = engine.add_session(
            make_session(qam16, "s0", retrain=RotateStub(qam16), threshold=0.12,
                         queue_depth=8)
        )
        for f in jump_traffic(qam16, 6, 11, step=0):  # degraded from frame 0
            assert engine.submit("s0", f)
        engine.remove_session("s0", drain=True)
        assert not session.can_retrain  # policy present, but leaving
        engine.drain()
        assert session.stats.frames_served == 6  # kept serving degraded
        assert session.stats.trigger_seqs  # the monitor did fire
        assert session.stats.retrains == 0
        assert engine.telemetry.retrains_started == 0

    def test_drain_waits_for_inflight_retrain_then_serves_and_leaves(self, qam16):
        import threading

        release = threading.Event()
        corrected = HybridDemapper(constellation=qam16, sigma2=S10)

        def slow_policy(rng):
            release.wait(timeout=30)
            return corrected

        engine = ServingEngine(config=EngineConfig(retrain_workers=1))
        session = engine.add_session(
            make_session(qam16, "s0", retrain=slow_policy, threshold=0.12)
        )
        frames = jump_traffic(qam16, 6, 13, step=0)
        for f in frames[:4]:
            engine.submit("s0", f)
        for _ in range(4):
            engine.step()  # trigger fires; retrain parks on the worker
        assert session.state == RETRAINING and session.pending > 0
        engine.remove_session("s0", drain=True)
        engine.step()
        assert engine.session("s0") is session  # still waiting on the swap
        release.set()
        engine.drain()
        assert session.stats.retrains == 1          # the swap still landed
        assert session.stats.frames_served == 4     # queue fully served
        assert session.stats.frames_dropped == 0    # drained: nothing lost
        with pytest.raises(KeyError):
            engine.session("s0")
        engine.close()

    def test_hard_removal_orphans_inflight_retrain(self, qam16):
        import threading

        release = threading.Event()

        def slow_failing_policy(rng):
            release.wait(timeout=30)
            raise RuntimeError("retrain exploded after its session left")

        engine = ServingEngine(config=EngineConfig(retrain_workers=1))
        session = engine.add_session(
            make_session(qam16, "s0", retrain=slow_failing_policy, threshold=0.12)
        )
        for f in jump_traffic(qam16, 4, 17, step=0):
            engine.submit("s0", f)
        for _ in range(4):
            engine.step()
        assert session.state == RETRAINING
        dropped = engine.remove_session("s0", drain=False)
        assert dropped == session.stats.frames_dropped > 0
        assert engine.telemetry.retrains_orphaned == 1
        assert engine.worker.pending == 0  # nothing left that could install
        release.set()
        engine.close()  # the orphan's failure is swallowed, not raised
        assert session.stats.retrains == 0  # never installed into the ghost


class TestChurnLoadgen:
    def test_plan_validation(self, qam16):
        session = make_session(qam16, "s0")
        frames = clean_traffic(qam16, 2, 1)
        with pytest.raises(ValueError):
            SessionPlan(session, frames, join_round=-1)
        with pytest.raises(ValueError):
            SessionPlan(session, frames, join_round=3, leave_round=3)

    def test_arrivals_departures_and_residents(self, qam16):
        engine = ServingEngine()
        resident = make_session(qam16, "resident", seed=1)
        drainer = make_session(qam16, "drainer", seed=2, queue_depth=8)
        hard = make_session(qam16, "hard", seed=3, queue_depth=8)
        late = make_session(qam16, "late", seed=4)
        plans = [
            SessionPlan(resident, clean_traffic(qam16, 6, 11)),
            SessionPlan(drainer, clean_traffic(qam16, 8, 12), leave_round=3),
            SessionPlan(hard, clean_traffic(qam16, 8, 13), leave_round=3, drain=False),
            SessionPlan(late, clean_traffic(qam16, 3, 14), join_round=4),
        ]
        stats = run_churn_load(engine, plans, max_rounds=100)
        # residents fully served
        assert resident.stats.frames_served == 6
        assert late.stats.frames_served == 3
        # the drainer lost nothing it accepted; the producer stopped at round 3
        assert drainer.stats.frames_dropped == 0
        assert drainer.stats.frames_served >= 3
        # the hard leaver had queued frames discarded
        assert hard.stats.frames_served + hard.stats.frames_dropped >= 3
        assert stats.joins == 4 and stats.leaves == 2
        assert {s.session_id for s in engine.sessions} == {"resident", "late"}

    def test_max_rounds_guard(self, qam16):
        engine = ServingEngine()
        plans = [SessionPlan(make_session(qam16, "s0"), clean_traffic(qam16, 50, 1))]
        with pytest.raises(RuntimeError, match="max_rounds"):
            run_churn_load(engine, plans, max_rounds=3)

    def test_leaver_with_early_finished_traffic_is_still_removed(self, qam16):
        """A leaver whose traffic runs dry before leave_round departs at its
        scheduled round anyway — the run must not return with the session
        still registered (phantom resident, missing leave telemetry)."""
        engine = ServingEngine()
        resident = make_session(qam16, "resident", seed=1)
        leaver = make_session(qam16, "leaver", seed=2)
        plans = [
            SessionPlan(resident, clean_traffic(qam16, 12, 3)),
            # 2 frames, served by ~round 2; departure scheduled at round 8
            SessionPlan(leaver, clean_traffic(qam16, 2, 4), leave_round=8),
        ]
        stats = run_churn_load(engine, plans, max_rounds=100)
        assert leaver.stats.frames_served == 2
        assert {s.session_id for s in engine.sessions} == {"resident"}
        assert stats.leaves == 1 and stats.drains_completed == 1


class TestChurnSoak:
    """Seeded randomized soak: ≥200 rounds of joins, drains, hard removals,
    retrain triggers, adaptive weights and backpressure — with conservation
    invariants checked every round."""

    N_ROUNDS = 210
    MAX_FLEET = 10

    def run_soak(self, qam, seed, *, retrain_workers=0, max_batch=64):
        rng = np.random.default_rng(seed)
        engine = ServingEngine(config=EngineConfig(
            max_batch=max_batch,
            retrain_workers=retrain_workers,
            weight_controller=WeightController(slo=FC.total_symbols * 6, interval=4),
        ))
        accepted: dict[str, int] = {}
        live: dict[str, dict] = {}      # sid -> {"session", "frames", "offset"}
        removed_drained: list[DemapperSession] = []
        removed_hard: list[DemapperSession] = []
        draining_ids: set[str] = set()
        next_id = 0

        def join():
            nonlocal next_id
            sid = f"c{next_id}"
            next_id += 1
            (srng,) = rng.spawn(1)
            jumpy = rng.random() < 0.4
            session = make_session(
                qam, sid, seed=int(rng.integers(2**31)), queue_depth=2,
                retrain=RotateStub(qam) if jumpy else None,
                threshold=0.12 if jumpy else 0.9,
                weight=float(rng.choice([0.5, 1.0, 2.0])),
            )
            n_frames = int(rng.integers(8, 25))
            frames = (
                jump_traffic(qam, n_frames, srng, step=int(rng.integers(2, 6)))
                if jumpy else clean_traffic(qam, n_frames, srng)
            )
            engine.add_session(session)
            live[sid] = {"session": session, "frames": frames, "offset": 0}
            accepted[sid] = 0

        for _ in range(4):
            join()

        for r in range(self.N_ROUNDS):
            op = rng.random()
            if op < 0.12 and len(live) < self.MAX_FLEET:
                join()
            elif op < 0.18 and len(live) > 2:
                sid = str(rng.choice(sorted(set(live) - draining_ids) or sorted(live)))
                if sid not in draining_ids:
                    engine.remove_session(sid, drain=True)
                    draining_ids.add(sid)
                    removed_drained.append(live[sid]["session"])
            elif op < 0.22 and len(live) > 2:
                sid = str(rng.choice(sorted(live)))
                engine.remove_session(sid, drain=False)
                entry = live.pop(sid)
                if sid in draining_ids:
                    draining_ids.discard(sid)
                    removed_drained.remove(entry["session"])
                removed_hard.append(entry["session"])
            # producers: burst 0-3 submissions per live session (bursts beat
            # queue_depth=2, so backpressure rejects genuinely happen)
            for sid in sorted(set(live) - draining_ids):
                entry = live[sid]
                for _ in range(int(rng.integers(0, 4))):
                    o = entry["offset"]
                    if o >= len(entry["frames"]):
                        break
                    if engine.submit(sid, entry["frames"][o]):
                        entry["offset"] = o + 1
                        accepted[sid] += 1
            engine.step()
            # drained sessions disappear once empty — sync our live view
            gone = [sid for sid in draining_ids
                    if all(s.session_id != sid for s in engine.sessions)]
            for sid in gone:
                draining_ids.discard(sid)
                live.pop(sid)
            # -- invariants, every round --------------------------------------
            live_ids = {s.session_id for s in engine.sessions}
            credits = engine.scheduler.credits()
            assert set(credits) <= live_ids, "credit leaked past a removal"
            for sid, c in credits.items():
                # the documented burst cap, from the session's *live* weight
                # (adaptive boosts included)
                cap = max(1.0, engine.scheduler.burst * engine.scheduler.quantum
                          * engine.session(sid).weight)
                assert 0.0 <= c <= cap + 1e-9, (sid, c, cap)

        for sid in sorted(set(live) - draining_ids):
            if sid in live:
                engine.remove_session(sid, drain=True)
                removed_drained.append(live[sid]["session"])
        engine.drain(max_rounds=10_000)
        engine.close()
        return engine, accepted, removed_drained, removed_hard

    @pytest.mark.parametrize("retrain_workers", [0, 2])
    def test_soak_conserves_frames_and_credit(self, qam16, retrain_workers):
        engine, accepted, drained, hard = self.run_soak(
            qam16, seed=2026, retrain_workers=retrain_workers
        )
        tele = engine.telemetry
        # the soak actually exercised everything it claims to
        assert tele.rounds >= self.N_ROUNDS
        assert tele.joins > 4 and tele.leaves == tele.joins  # all left at the end
        assert tele.drains_completed == len(drained)
        assert len(hard) > 0 and tele.frames_dropped > 0
        assert tele.retrains_started > 0
        assert sum(s.stats.rejects for s in drained + hard) > 0, "no backpressure?"
        # no frame loss for drained sessions: accepted == served, exactly
        for session in drained:
            sid = session.session_id
            assert session.stats.frames_served == accepted[sid], sid
            assert session.stats.frames_dropped == 0
        # hard removals: every accepted frame is accounted served-or-dropped
        for session in hard:
            sid = session.session_id
            assert (
                session.stats.frames_served + session.stats.frames_dropped
                == accepted[sid]
            ), sid
        # fleet-wide conservation
        total_accepted = sum(accepted.values())
        total_served = sum(s.stats.frames_served for s in drained + hard)
        assert total_served == tele.frames_served
        assert total_accepted == total_served + tele.frames_dropped
        # scheduler fully quiesced
        assert engine.scheduler.credits() == {}
        # fleet-size timeline bookends: grows from the seed fleet, ends empty
        assert engine.telemetry.fleet_timeline[0][1] == 1
        assert engine.telemetry.fleet_timeline[-1][1] == 0

    def test_soak_is_deterministic(self, qam16):
        a = self.run_soak(qam16, seed=7)[0].telemetry.snapshot()
        b = self.run_soak(qam16, seed=7)[0].telemetry.snapshot()
        assert a == b


class TestSurvivorInvariance:
    """The churn determinism contract: a surviving session's outputs are a
    pure function of its own traffic — invariant to the churn composition
    around it, the micro-batch width, and the retrain worker count."""

    N_FRAMES = 14

    def survivor_traffic(self, qam):
        return jump_traffic(qam, self.N_FRAMES, 4242, step=6)

    def run(self, qam, churn_seed, *, max_batch=64, retrain_workers=0):
        """One run: the watched survivor plus a churn storm around it."""
        llrs: list[np.ndarray] = []
        engine = ServingEngine(config=EngineConfig(
            max_batch=max_batch,
            retrain_workers=retrain_workers,
            on_frame=lambda s, f, block, rep: (
                llrs.append(block.copy()) if s.session_id == "watch" else None
            ),
        ))
        survivor = make_session(
            qam, "watch", seed=1234, queue_depth=3,
            retrain=RotateStub(qam), threshold=0.12, tracking=True,
        )
        engine.add_session(survivor)
        frames = self.survivor_traffic(qam)
        churn: dict[str, dict] = {}
        rng = np.random.default_rng(churn_seed)
        offset = 0
        guard = 0
        while survivor.stats.frames_served < self.N_FRAMES:
            guard += 1
            assert guard < 500, "survivor starved"
            if churn_seed is not None:
                # a churn storm: join up to 2 sessions/round, drain or
                # hard-remove others, all driven by the churn seed only
                if rng.random() < 0.5 and len(churn) < 6:
                    sid = f"g{guard}"
                    (srng,) = rng.spawn(1)
                    engine.add_session(
                        make_session(qam, sid, seed=int(rng.integers(2**31)),
                                     weight=float(rng.choice([0.5, 2.0])))
                    )
                    churn[sid] = {"frames": clean_traffic(qam, 30, srng), "o": 0}
                if churn and rng.random() < 0.35:
                    sid = str(rng.choice(sorted(churn)))
                    engine.remove_session(sid, drain=bool(rng.random() < 0.5))
                    del churn[sid]
                for sid in sorted(churn):
                    if any(s.session_id == sid for s in engine.sessions):
                        entry = churn[sid]
                        while entry["o"] < len(entry["frames"]) and engine.submit(
                            sid, entry["frames"][entry["o"]]
                        ):
                            entry["o"] += 1
            while offset < len(frames) and engine.submit("watch", frames[offset]):
                offset += 1
            engine.step()
            if survivor.state == RETRAINING and engine.worker.pending:
                engine.telemetry.retrains_completed += engine.worker.wait_all()
        engine.close()
        timeline = (
            tuple(survivor.stats.trigger_seqs),
            tuple(survivor.stats.tier_timeline),
            tuple(survivor.stats.sigma2_trajectory),
            survivor.stats.retrains,
            survivor.stats.tracks,
        )
        return llrs, timeline

    @pytest.fixture(scope="class")
    def reference(self, qam16):
        """No churn, sequential batches, inline worker."""
        return self.run(qam16, churn_seed=None, max_batch=1)

    def assert_identical(self, run, reference):
        llrs, timeline = run
        ref_llrs, ref_timeline = reference
        assert timeline == ref_timeline
        assert len(llrs) == len(ref_llrs) == self.N_FRAMES
        for got, ref in zip(llrs, ref_llrs):
            assert np.array_equal(got, ref)

    def test_reference_scenario_adapts(self, reference):
        _, timeline = reference
        assert timeline[0], "survivor's monitor never fired — scenario too easy"

    @pytest.mark.parametrize("churn_seed", [1, 2, 3])
    def test_invariant_to_churn_schedule(self, qam16, reference, churn_seed):
        self.assert_identical(self.run(qam16, churn_seed=churn_seed), reference)

    @pytest.mark.parametrize("max_batch", [2, 64])
    def test_invariant_to_batch_width_under_churn(self, qam16, reference, max_batch):
        self.assert_identical(
            self.run(qam16, churn_seed=5, max_batch=max_batch), reference
        )

    @pytest.mark.parametrize("retrain_workers", [1, 3])
    def test_invariant_to_worker_count_under_churn(
        self, qam16, reference, retrain_workers
    ):
        self.assert_identical(
            self.run(qam16, churn_seed=5, retrain_workers=retrain_workers), reference
        )
