"""Unit tests for the coded-traffic substrate (repro.serving.coding).

The serving suites exercise the happy path end-to-end; these pin the
config/layout contracts: validation errors, the bit-budget arithmetic,
the shared-layout cache, and the interleaver on/off geometry.
"""

import numpy as np
import pytest

from repro.serving.coding import CodedFrameConfig, CodedLayout, coded_layout


class TestCodedFrameConfig:
    def test_defaults_are_valid_and_frozen(self):
        cfg = CodedFrameConfig()
        assert cfg.generators == (0b111, 0b101)
        assert cfg.constraint_length == 3
        assert cfg.crc == "crc16"
        with pytest.raises(AttributeError):
            cfg.crc = "crc8"

    def test_generators_normalised_to_int_tuple(self):
        cfg = CodedFrameConfig(generators=[7.0, 5])
        assert cfg.generators == (7, 5)
        assert all(isinstance(g, int) for g in cfg.generators)

    def test_invalid_code_rejected(self):
        with pytest.raises(ValueError):
            CodedFrameConfig(generators=(0b111,))  # needs >= 2 generators
        with pytest.raises(ValueError):
            CodedFrameConfig(generators=(0, 5))  # zero polynomial
        with pytest.raises(ValueError):
            CodedFrameConfig(constraint_length=1)

    def test_unknown_crc_rejected(self):
        with pytest.raises(ValueError, match="crc"):
            CodedFrameConfig(crc="crc32")

    def test_monitor_knobs_validated(self):
        with pytest.raises(ValueError):
            CodedFrameConfig(crc_fail_threshold=1.5)
        with pytest.raises(ValueError):
            CodedFrameConfig(crc_fail_window=0)
        with pytest.raises(ValueError):
            CodedFrameConfig(crc_fail_cooldown=-1)

    def test_hashable_and_value_equal(self):
        a = CodedFrameConfig(generators=(7, 5))
        b = CodedFrameConfig(generators=[7, 5])
        assert a == b and hash(a) == hash(b)


class TestCodedLayout:
    def test_bit_budget_arithmetic(self):
        # 896 payload bits, rate-1/2 K=3, CRC-16: 424 info bits, 12 pad
        layout = CodedLayout(CodedFrameConfig(), 896)
        assert layout.n_info == 424
        assert layout.n_steps == 424 + 16 + 2
        assert layout.coded_len == 884
        assert layout.pad == 12
        assert layout.n_info % 8 == 0

    def test_too_small_payload_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            CodedLayout(CodedFrameConfig(), 40)  # < 8 info bits of room

    def test_encode_validates_shape(self):
        layout = CodedLayout(CodedFrameConfig(), 192)
        with pytest.raises(ValueError):
            layout.encode(np.zeros(layout.n_info + 8, dtype=np.int8))

    def test_decode_rows_validates_shape(self):
        layout = CodedLayout(CodedFrameConfig(), 192)
        with pytest.raises(ValueError):
            layout.decode_rows(np.zeros((2, 191)))

    def test_interleave_off_is_plain_codeword_order(self):
        cfg = CodedFrameConfig(interleave=False)
        layout = CodedLayout(cfg, 192)
        assert layout.interleaver is None
        info = np.random.default_rng(3).integers(0, 2, layout.n_info)
        payload = layout.encode(info.astype(np.int8))
        raw = layout.code.encode(layout.crc.append(info.astype(np.int8)))
        assert np.array_equal(payload[: layout.coded_len], raw)
        assert not payload[layout.coded_len :].any()  # zero filler

    def test_interleaver_seed_changes_payload_not_result(self):
        info = np.random.default_rng(4).integers(0, 2, 72).astype(np.int8)
        a = CodedLayout(CodedFrameConfig(interleaver_seed=1), 192)
        b = CodedLayout(CodedFrameConfig(interleaver_seed=2), 192)
        pa, pb = a.encode(info), b.encode(info)
        assert not np.array_equal(pa, pb)  # different permutations
        for layout, payload in ((a, pa), (b, pb)):
            pseudo = (2.0 * payload.astype(np.float64) - 1.0) * 4.0
            dec, crc_ok, _ = layout.decode(pseudo)
            assert crc_ok and np.array_equal(dec, info)

    def test_crc_failure_reported_not_raised(self):
        layout = CodedLayout(CodedFrameConfig(), 192)
        info = np.random.default_rng(5).integers(0, 2, layout.n_info).astype(np.int8)
        pseudo = (2.0 * layout.encode(info).astype(np.float64) - 1.0) * 4.0
        # garble enough payload LLRs that the decode cannot recover
        pseudo[: layout.coded_len // 2] *= -1.0
        _, crc_ok, _ = layout.decode(pseudo)
        assert crc_ok is False

    def test_shared_layout_cache(self):
        cfg_a = CodedFrameConfig()
        cfg_b = CodedFrameConfig()  # equal by value
        assert coded_layout(cfg_a, 896) is coded_layout(cfg_b, 896)
        assert coded_layout(cfg_a, 896) is not coded_layout(cfg_a, 192)
