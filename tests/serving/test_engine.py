"""ServingEngine: correctness vs the sequential path, triggers, telemetry."""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.channels.factories import AWGNFactory, CompositeFactory, PhaseOffsetFactory
from repro.extraction import HybridDemapper
from repro.extraction.monitor import PilotBERMonitor
from repro.link.frames import FrameConfig, frame_bers
from repro.modulation import qam_constellation
from repro.serving import (
    EngineConfig,
    ServingEngine,
    SessionConfig,
    SteadyChannel,
    SteppedChannel,
    build_fleet,
    generate_traffic,
    run_load,
)

SIGMA2 = sigma2_from_snr(8.0, 4)
FC = FrameConfig(pilot_symbols=16, payload_symbols=48)


@pytest.fixture
def qam16():
    return qam_constellation(16)


def fleet(engine, qam, n_sessions, *, retrain_factory=None, queue_depth=4, monitor=None):
    return build_fleet(
        engine,
        n_sessions,
        HybridDemapper(constellation=qam, sigma2=SIGMA2),
        monitor_factory=monitor if monitor is not None else (lambda: PilotBERMonitor(0.12, window=2, cooldown=2)),
        config=SessionConfig(frame=FC, queue_depth=queue_depth),
        retrain_factory=retrain_factory,
        seed=42,
    )


def awgn_traffic(qam, sessions, n_frames, seed=5):
    rng = np.random.default_rng(seed)
    chan = SteadyChannel(AWGNFactory(8.0, 4))
    return {
        s.session_id: generate_traffic(qam, FC, n_frames, chan, r)
        for s, r in zip(sessions, rng.spawn(len(sessions)))
    }


class TestServingCorrectness:
    def test_llrs_and_bers_match_sequential_reference(self, qam16):
        """Batched serving == per-frame hybrid.llrs + frame_bers, bit for bit."""
        captured = {}
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: captured.__setitem__(
                (s.session_id, f.seq), (llrs.copy(), rep)
            )
        ))
        sessions = fleet(engine, qam16, 5)
        traffic = awgn_traffic(qam16, sessions, 3)
        run_load(engine, traffic)
        assert len(captured) == 15
        for s in sessions:
            hybrid = s.hybrid
            for frame in traffic[s.session_id]:
                llrs, rep = captured[(s.session_id, frame.seq)]
                ref = hybrid.llrs(frame.received)
                assert np.array_equal(llrs, ref)
                hat = (ref > 0).astype(np.int8)
                pilot, payload = frame_bers(
                    hat, qam16.bit_matrix[frame.indices], frame.pilot_mask
                )
                assert rep.pilot_ber == pilot
                assert rep.payload_ber == payload

    def test_per_session_sigma2_scales_llrs(self, qam16):
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: caps.__setitem__(s.session_id, llrs.copy())
        ))
        caps = {}
        hybrid = HybridDemapper(constellation=qam16, sigma2=SIGMA2)
        sessions = build_fleet(
            engine, 2, hybrid,
            monitor_factory=lambda: PilotBERMonitor(0.5, window=8),
            config=SessionConfig(frame=FC),
        )
        sessions[1].update_sigma2(2 * SIGMA2)
        traffic = awgn_traffic(qam16, sessions, 1)
        # same received row for both sessions isolates the sigma effect
        traffic[sessions[1].session_id] = traffic[sessions[0].session_id]
        run_load(engine, traffic)
        a, b = caps[sessions[0].session_id], caps[sessions[1].session_id]
        assert np.allclose(a, 2 * b)

    def test_telemetry_counters(self, qam16):
        engine = ServingEngine(config=EngineConfig(max_batch=3))
        sessions = fleet(engine, qam16, 4)
        traffic = awgn_traffic(qam16, sessions, 2)
        stats = run_load(engine, traffic)
        assert stats.frames_served == 8
        assert stats.symbols_served == 8 * FC.total_symbols
        # max_batch=3 splits each 4-wide round into 3+1
        assert stats.occupancy == {3: 2, 1: 2}
        assert stats.mean_occupancy == 2.0
        for s in sessions:
            assert s.stats.frames_served == 2
            assert s.stats.symbols_served == 2 * FC.total_symbols
            assert len(s.stats.pilot_ber_trajectory) == 2


class TestAdaptationLoop:
    def test_trigger_retrain_swap_recovers(self, qam16):
        """Phase jump -> monitor fires -> swap to corrected centroids -> BER recovers."""
        offset = np.pi / 5
        corrected = HybridDemapper(
            constellation=type(qam16)(points=qam16.points * np.exp(1j * offset)),
            sigma2=SIGMA2,
        )
        engine = ServingEngine()
        sessions = fleet(engine, qam16, 3, retrain_factory=lambda i: (lambda rng: corrected))
        chan = SteppedChannel(
            AWGNFactory(8.0, 4),
            CompositeFactory((PhaseOffsetFactory(offset), AWGNFactory(8.0, 4))),
            step_seq=4,
        )
        rng = np.random.default_rng(9)
        traffic = {
            s.session_id: generate_traffic(qam16, FC, 12, chan, r)
            for s, r in zip(sessions, rng.spawn(3))
        }
        stats = run_load(engine, traffic)
        assert stats.retrains_started == stats.retrains_completed == 3
        for s in sessions:
            traj = s.stats.pilot_ber_trajectory
            assert s.stats.retrains == 1
            # the windowed mean crosses the threshold within a frame or two
            # of the jump — exactly once, because the swap fixes the channel
            assert len(s.stats.trigger_seqs) == 1
            t = s.stats.trigger_seqs[0]
            assert t in (4, 5)
            assert s.hybrid is corrected
            # healthy before the jump, catastrophic until the trigger frame
            # (still served by the stale centroids), healthy after the swap
            assert max(traj[:4]) < 0.05
            assert traj[t] > 0.1
            assert max(traj[t + 1 :]) < 0.05

    def test_sessions_without_policy_keep_serving(self, qam16):
        engine = ServingEngine()
        sessions = fleet(engine, qam16, 2, retrain_factory=None)
        chan = SteppedChannel(
            AWGNFactory(8.0, 4),
            CompositeFactory((PhaseOffsetFactory(np.pi / 4), AWGNFactory(8.0, 4))),
            step_seq=2,
        )
        rng = np.random.default_rng(3)
        traffic = {
            s.session_id: generate_traffic(qam16, FC, 8, chan, r)
            for s, r in zip(sessions, rng.spawn(2))
        }
        stats = run_load(engine, traffic)
        assert stats.frames_served == 16  # nothing stalls
        assert stats.retrains_started == 0
        for s in sessions:
            assert s.stats.trigger_seqs  # triggers recorded even without a policy
            assert s.stats.retrains == 0

    def test_retraining_session_never_stalls_others(self, qam16):
        """While one session's job is in flight, others keep being served."""
        import threading

        release = threading.Event()
        corrected = HybridDemapper(
            constellation=type(qam16)(points=qam16.points * np.exp(1j * np.pi / 4)),
            sigma2=SIGMA2,
        )

        def slow_policy(rng):
            release.wait(timeout=30)
            return corrected

        engine = ServingEngine(config=EngineConfig(retrain_workers=1))
        sessions = fleet(
            engine, qam16, 3, retrain_factory=lambda i: slow_policy if i == 0 else None
        )
        chan = SteppedChannel(
            AWGNFactory(8.0, 4),
            CompositeFactory((PhaseOffsetFactory(np.pi / 4), AWGNFactory(8.0, 4))),
            step_seq=1,
        )
        rng = np.random.default_rng(4)
        traffic = {
            s.session_id: generate_traffic(qam16, FC, 6, chan, r)
            for s, r in zip(sessions, rng.spawn(3))
        }
        for sid, frames in traffic.items():
            for f in frames[:4]:
                engine.submit(sid, f)
        # serve rounds while session 0's retrain is parked on the worker
        for _ in range(6):
            engine.step()
        assert sessions[0].stats.frames_served < 4   # paused at the trigger
        assert sessions[1].stats.frames_served == 4  # unaffected
        assert sessions[2].stats.frames_served == 4
        release.set()
        engine.worker.wait_all()
        engine.drain()
        assert sessions[0].stats.retrains == 1
        engine.close()


class TestRetrainWorker:
    def test_failed_job_surfaces_as_outcome_and_installs_land_once(self, qam16):
        """poll() never raises: a raising job becomes a ``(session, exc)``
        outcome (surfaced exactly once via take_outcomes), finished jobs
        install exactly once, and the pool still shuts down cleanly."""
        import time

        from repro.serving import RetrainWorker

        good = HybridDemapper(constellation=qam16, sigma2=SIGMA2)
        engine = ServingEngine()
        ok_session, bad_session = fleet(engine, qam16, 2)

        worker = RetrainWorker(2)
        worker.submit(ok_session, lambda rng: good, np.random.default_rng(0))

        def boom(rng):
            raise RuntimeError("retrain exploded")

        worker.submit(bad_session, boom, np.random.default_rng(1))
        outcomes = []
        deadline = time.monotonic() + 10
        while worker.pending and time.monotonic() < deadline:
            worker.poll()  # must never raise on a job's behalf
            outcomes += worker.take_outcomes()
            time.sleep(0.01)
        outcomes += worker.take_outcomes()
        assert worker.pending == 0  # failed job consumed, not stuck
        assert ok_session.stats.retrains == 1  # installed exactly once
        by_session = {s.session_id: err for s, err in outcomes}
        assert by_session[ok_session.session_id] is None
        assert "retrain exploded" in str(by_session[bad_session.session_id])
        worker.poll()  # no re-install
        assert ok_session.stats.retrains == 1
        assert worker.take_outcomes() == []  # surfaced exactly once
        worker.close()  # pool shuts down cleanly after the failure

    def test_close_credits_late_swaps_to_telemetry(self, qam16):
        """Swaps landing in engine.close() still count as completed."""
        import threading

        release = threading.Event()
        good = HybridDemapper(constellation=qam16, sigma2=SIGMA2)

        def slow(rng):
            release.wait(timeout=30)
            return good

        engine = ServingEngine(config=EngineConfig(retrain_workers=1))
        (session,) = fleet(engine, qam16, 1, retrain_factory=lambda i: slow)
        session.monitor.observe(0.5)  # fill the window so the next frame fires
        engine.telemetry.retrains_started += 1
        rng = session.begin_retrain()
        engine.worker.submit(session, session.retrain, rng)
        release.set()
        engine.close()
        assert engine.telemetry.retrains_completed == 1
        assert session.stats.retrains == 1


class TestDrainGuard:
    """drain() must fail loudly, naming the culprits, instead of spinning."""

    def test_no_progress_error_names_stuck_sessions(self, qam16):
        engine = ServingEngine()
        stuck, healthy = fleet(engine, qam16, 2)
        frames = awgn_traffic(qam16, [stuck, healthy], 2)
        for s in (stuck, healthy):
            for f in frames[s.session_id]:
                engine.submit(s.session_id, f)
        # pause with no job in flight: nothing can ever make progress
        stuck.begin_retrain()
        with pytest.raises(RuntimeError, match=stuck.session_id):
            engine.drain()
        assert healthy.stats.frames_served == 2  # others drained first

    def test_max_rounds_guard_catches_spinning_scheduler(self, qam16):
        from repro.serving import DeficitRoundRobin

        class StuckScheduler(DeficitRoundRobin):
            def allocate(self, sessions):
                return {}  # pathological: never grants a quota

        engine = ServingEngine(config=EngineConfig(scheduler=StuckScheduler()))
        (session,) = fleet(engine, qam16, 1)
        engine.submit(session.session_id, awgn_traffic(qam16, [session], 1)[
            session.session_id][0])
        # the session stays ready forever, so the unguarded loop would spin;
        # the guard raises and names it
        with pytest.raises(RuntimeError, match="max_rounds=25"):
            engine.drain(max_rounds=25)
        with pytest.raises(RuntimeError, match=session.session_id):
            engine.drain(max_rounds=5)

    def test_max_rounds_generous_enough_passes(self, qam16):
        engine = ServingEngine()
        sessions = fleet(engine, qam16, 2)
        traffic = awgn_traffic(qam16, sessions, 3)
        for sid, frames in traffic.items():
            for f in frames:
                engine.submit(sid, f)
        assert engine.drain(max_rounds=100) == 6

    def test_drain_finishing_exactly_on_the_bound_returns(self, qam16):
        """Completion is checked before the guard: a drain that needs
        exactly max_rounds rounds must return, not raise with an empty
        stuck-session list."""
        engine = ServingEngine()
        (session,) = fleet(engine, qam16, 1)
        for f in awgn_traffic(qam16, [session], 3)[session.session_id]:
            engine.submit(session.session_id, f)
        assert engine.drain(max_rounds=3) == 3  # one frame per round

    def test_max_rounds_validation(self, qam16):
        with pytest.raises(ValueError):
            ServingEngine().drain(max_rounds=0)

    def test_run_load_max_rounds_raises_like_drain(self, qam16):
        """max_rounds means the same thing across drain/run_load/
        run_churn_load: a safety bound that raises, never a silent stop."""
        engine = ServingEngine()
        sessions = fleet(engine, qam16, 1)
        traffic = awgn_traffic(qam16, sessions, 10)
        with pytest.raises(RuntimeError, match="max_rounds=2"):
            run_load(engine, traffic, max_rounds=2)
        # a bound the run fits inside — including finishing exactly on it —
        # completes normally
        engine2 = ServingEngine()
        sessions2 = fleet(engine2, qam16, 1)
        stats = run_load(engine2, awgn_traffic(qam16, sessions2, 3), max_rounds=3)
        assert stats.frames_served == 3


class TestEngineApi:
    def test_duplicate_session_rejected(self, qam16):
        engine = ServingEngine()
        fleet(engine, qam16, 1)
        with pytest.raises(ValueError, match="duplicate"):
            fleet(engine, qam16, 1)

    def test_submit_unknown_session_raises(self, qam16):
        with pytest.raises(KeyError):
            ServingEngine().submit("nope", None)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingEngine(config=EngineConfig(max_batch=0))
        with pytest.raises(ValueError):
            ServingEngine(config=EngineConfig(retrain_workers=-1))

    def test_context_manager_closes_worker(self, qam16):
        with ServingEngine(config=EngineConfig(retrain_workers=1)) as engine:
            fleet(engine, qam16, 1)
        assert engine.worker.pending == 0
