"""Group-by-constellation batched dispatch: grouping, parity, allocation."""

import numpy as np
import pytest

from repro.backend import backend_from_name, get_backend
from repro.backend.dispatch import (
    DemapRequest,
    batched_maxlog_llrs,
    group_requests,
    grouped_maxlog_llrs,
)
from repro.modulation import MaxLogDemapper, qam_constellation


@pytest.fixture
def qam16():
    return qam_constellation(16)


@pytest.fixture
def psk4():
    from repro.modulation import psk_constellation

    return psk_constellation(4)


def _request(const, rng, n, sigma2):
    ml = MaxLogDemapper(const)
    y = rng.normal(size=n) + 1j * rng.normal(size=n)
    return DemapRequest(received=y, points=const.points, bitsets=ml.bitsets, sigma2=sigma2)


class TestGrouping:
    def test_same_constellation_same_length_batches(self, qam16):
        rng = np.random.default_rng(0)
        reqs = [_request(qam16, rng, 64, 0.1) for _ in range(5)]
        assert group_requests(reqs) == [[0, 1, 2, 3, 4]]

    def test_sigma2_never_splits_a_group(self, qam16):
        rng = np.random.default_rng(0)
        reqs = [_request(qam16, rng, 64, 0.05 * (i + 1)) for i in range(4)]
        assert group_requests(reqs) == [[0, 1, 2, 3]]

    def test_length_splits(self, qam16):
        rng = np.random.default_rng(0)
        reqs = [_request(qam16, rng, n, 0.1) for n in (64, 32, 64, 32)]
        assert group_requests(reqs) == [[0, 2], [1, 3]]

    def test_constellation_splits(self, qam16, psk4):
        rng = np.random.default_rng(0)
        reqs = [
            _request(qam16, rng, 64, 0.1),
            _request(psk4, rng, 64, 0.1),
            _request(qam16, rng, 64, 0.1),
        ]
        assert group_requests(reqs) == [[0, 2], [1]]

    def test_content_based_key_merges_equal_point_sets(self, qam16):
        # two independently built but identical constellations share a group
        rng = np.random.default_rng(0)
        other = qam_constellation(16)
        reqs = [_request(qam16, rng, 64, 0.1), _request(other, rng, 64, 0.2)]
        assert group_requests(reqs) == [[0, 1]]


class TestParity:
    def test_bit_identical_to_scalar_kernel(self, qam16, psk4):
        """Every request's LLR block equals a sequential maxlog_llrs call."""
        rng = np.random.default_rng(7)
        reqs = [
            _request(qam16, rng, 200, 0.03),
            _request(psk4, rng, 200, 0.2),
            _request(qam16, rng, 200, 0.08),
            _request(qam16, rng, 128, 0.05),
        ]
        results = grouped_maxlog_llrs(reqs)
        be = get_backend()
        for req, got in zip(reqs, results):
            ref = be.maxlog_llrs(req.received, req.points, req.bitsets, req.sigma2)
            assert np.array_equal(got, ref)

    def test_batched_single_group_rows(self, qam16):
        rng = np.random.default_rng(3)
        reqs = [_request(qam16, rng, 96, 0.02 * (i + 1)) for i in range(6)]
        llrs3 = batched_maxlog_llrs(reqs)
        assert llrs3.shape == (6, 96, 4)
        be = get_backend()
        for req, row in zip(reqs, llrs3):
            assert np.array_equal(row, be.maxlog_llrs(req.received, req.points, req.bitsets, req.sigma2))

    def test_outs_threaded_and_filled(self, qam16):
        rng = np.random.default_rng(5)
        reqs = [_request(qam16, rng, 64, 0.1) for _ in range(3)]
        outs = [np.empty((64, 4)) for _ in range(3)]
        results = grouped_maxlog_llrs(reqs, outs=outs)
        for out, res in zip(outs, results):
            assert res is out
        be = get_backend()
        for req, out in zip(reqs, outs):
            assert np.array_equal(out, be.maxlog_llrs(req.received, req.points, req.bitsets, req.sigma2))

    def test_float32_tier_runs(self, qam16):
        rng = np.random.default_rng(9)
        reqs = [_request(qam16, rng, 64, 0.1) for _ in range(3)]
        be32 = backend_from_name("numpy32")
        got = grouped_maxlog_llrs(reqs, backend=be32)
        ref = grouped_maxlog_llrs(reqs)
        for g, r in zip(got, ref):
            assert np.allclose(g, r, atol=1e-3 * np.abs(r).max())


class TestAllocationAndValidation:
    def test_steady_state_allocates_nothing(self, qam16):
        rng = np.random.default_rng(1)
        be = get_backend()
        reqs = [_request(qam16, rng, 128, 0.05 * (i + 1)) for i in range(4)]
        outs = [np.empty((128, 4)) for _ in range(4)]
        grouped_maxlog_llrs(reqs, outs=outs, backend=be)  # warm the workspace
        hits0, misses0 = be.workspace.stats
        grouped_maxlog_llrs(reqs, outs=outs, backend=be)
        hits1, misses1 = be.workspace.stats
        assert misses1 == misses0  # no new scratch buffers
        assert hits1 > hits0

    def test_empty_batched_rejected(self):
        with pytest.raises(ValueError, match="at least one request"):
            batched_maxlog_llrs([])

    def test_mismatched_outs_rejected(self, qam16):
        rng = np.random.default_rng(1)
        reqs = [_request(qam16, rng, 64, 0.1)]
        with pytest.raises(ValueError, match="one entry per request"):
            grouped_maxlog_llrs(reqs, outs=[])

    def test_ragged_group_rejected(self, qam16):
        rng = np.random.default_rng(1)
        reqs = [_request(qam16, rng, 64, 0.1), _request(qam16, rng, 32, 0.1)]
        with pytest.raises(ValueError, match="length"):
            batched_maxlog_llrs(reqs)

    def test_bad_sigma2_rejected(self, qam16):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError, match="sigma2"):
            _request(qam16, rng, 64, 0.0)
