"""Backend parity: tiers agree with the reference, selection works, and the
parallel Monte-Carlo engine is worker-count invariant."""

from __future__ import annotations

import functools

import numpy as np
import pytest
from scipy.special import logsumexp

from repro.backend import (
    FLOAT32_LLR_RTOL,
    NUMBA_AVAILABLE,
    PaddedBitSets,
    Workspace,
    available_backends,
    backend_from_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.link import AWGNFactory, simulate_ber, sweep_snr
from repro.modulation import (
    ExactLogMAPDemapper,
    HardDemapper,
    MaxLogDemapper,
    qam_constellation,
)


@pytest.fixture
def qam16():
    return qam_constellation(16)


@pytest.fixture
def received(qam16):
    rng = np.random.default_rng(1234)
    n = 20_000
    idx = rng.integers(0, 16, n)
    noise = (rng.normal(size=n) + 1j * rng.normal(size=n)) * 0.15
    return qam16.points[idx] + noise


def _reference_maxlog(constellation, y, sigma2):
    """The historical (pre-backend) formulation, verbatim."""
    yv = np.asarray(y, dtype=np.complex128).ravel()
    diff = yv[:, None] - constellation.points[None, :]
    d2 = (diff.real * diff.real) + (diff.imag * diff.imag)
    bm = constellation.bit_matrix
    k = constellation.bits_per_symbol
    out = np.empty((d2.shape[0], k), dtype=np.float64)
    for j in range(k):
        min0 = d2[:, np.flatnonzero(bm[:, j] == 0)].min(axis=1)
        min1 = d2[:, np.flatnonzero(bm[:, j] == 1)].min(axis=1)
        out[:, j] = min0 - min1
    out *= 1.0 / (2.0 * sigma2)
    return out


def _reference_logmap(constellation, y, sigma2):
    yv = np.asarray(y, dtype=np.complex128).ravel()
    diff = yv[:, None] - constellation.points[None, :]
    metric = -((diff.real * diff.real) + (diff.imag * diff.imag)) / (2.0 * sigma2)
    bm = constellation.bit_matrix
    k = constellation.bits_per_symbol
    out = np.empty((metric.shape[0], k), dtype=np.float64)
    for j in range(k):
        lse1 = logsumexp(metric[:, np.flatnonzero(bm[:, j] == 1)], axis=1)
        lse0 = logsumexp(metric[:, np.flatnonzero(bm[:, j] == 0)], axis=1)
        out[:, j] = lse1 - lse0
    return out


class TestSelection:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        set_backend(None)
        assert get_backend().name == "numpy"
        assert get_backend().dtype == np.float64

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy32")
        set_backend(None)  # force lazy re-resolution
        try:
            assert get_backend().name == "numpy32"
        finally:
            monkeypatch.delenv("REPRO_BACKEND")
            set_backend(None)

    def test_use_backend_scopes_and_restores(self):
        set_backend(None)
        before = get_backend()
        with use_backend("numpy32") as b:
            assert b.name == "numpy32"
            assert get_backend() is b
        assert get_backend() is before

    def test_instances_are_cached(self):
        assert backend_from_name("numpy") is backend_from_name("reference")
        assert backend_from_name("float32") is backend_from_name("numpy32")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backend_from_name("cuda")

    def test_numba_request_never_fails(self):
        # silent fallback: requesting the JIT tier always yields a backend
        b = backend_from_name("numba")
        assert b.name == ("numba" if NUMBA_AVAILABLE else "numpy")

    def test_available_backends_resolve(self):
        for name in available_backends():
            assert backend_from_name(name) is not None


class TestReferenceParity:
    """The ``numpy`` tier reproduces the historical implementation exactly.

    Demappers are pinned to ``backend="numpy"`` so the suite stays valid
    even when the ambient ``REPRO_BACKEND`` selects a faster tier.
    """

    def test_maxlog_bit_identical(self, qam16, received):
        got = MaxLogDemapper(qam16, backend="numpy").llrs(received, 0.02)
        assert np.array_equal(got, _reference_maxlog(qam16, received, 0.02))

    def test_logmap_matches_scipy(self, qam16, received):
        got = ExactLogMAPDemapper(qam16, backend="numpy").llrs(received, 0.02)
        np.testing.assert_allclose(got, _reference_logmap(qam16, received, 0.02), rtol=1e-12, atol=1e-12)

    def test_hard_indices_identical(self, qam16, received):
        got = HardDemapper(qam16, backend="numpy").demap_indices(received)
        diff = received[:, None] - qam16.points[None, :]
        ref = np.argmin((diff.real**2 + diff.imag**2), axis=1)
        assert np.array_equal(got, ref)

    def test_out_parameter_is_filled_in_place(self, qam16, received):
        ml = MaxLogDemapper(qam16)
        out = np.empty((received.size, 4), dtype=np.float64)
        got = ml.llrs(received, 0.02, out=out)
        assert got is out
        assert np.array_equal(out, ml.llrs(received, 0.02))

    def test_out_parameter_validated(self, qam16, received):
        ml = MaxLogDemapper(qam16)
        with pytest.raises(ValueError, match="shape"):
            ml.llrs(received, 0.02, out=np.empty((received.size, 3)))
        with pytest.raises(ValueError, match="float64"):
            ml.llrs(received, 0.02, out=np.empty((received.size, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            ml.llrs(received, 0.02, out=np.empty((2, received.size, 4)))


class TestFloat32Parity:
    def test_maxlog_llrs_within_documented_tolerance(self, qam16, received):
        ml64 = MaxLogDemapper(qam16, backend="numpy")
        ml32 = MaxLogDemapper(qam16, backend="numpy32")
        r64 = ml64.llrs(received, 0.02)
        r32 = ml32.llrs(received, 0.02)
        scale = np.abs(r64).max()
        assert np.abs(r32 - r64).max() <= FLOAT32_LLR_RTOL * scale

    def test_logmap_llrs_within_documented_tolerance(self, qam16, received):
        r64 = ExactLogMAPDemapper(qam16, backend="numpy").llrs(received, 0.05)
        r32 = ExactLogMAPDemapper(qam16, backend="numpy32").llrs(received, 0.05)
        assert np.abs(r32 - r64).max() <= FLOAT32_LLR_RTOL * np.abs(r64).max()

    def test_hard_decisions_agree_on_fixture(self, qam16, received):
        # deterministic fixture; float32 rounding does not move any sample
        # across a decision boundary here
        b64 = MaxLogDemapper(qam16, backend="numpy").demap_bits(received, 0.02)
        b32 = MaxLogDemapper(qam16, backend="numpy32").demap_bits(received, 0.02)
        assert np.array_equal(b64, b32)

    def test_outputs_are_float64_regardless_of_tier(self, qam16, received):
        r32 = MaxLogDemapper(qam16, backend="numpy32").llrs(received, 0.02)
        assert r32.dtype == np.float64


@pytest.fixture
def sweep_received(qam16):
    """(S, n) CRN-style received tensor + matching per-row sigma2s."""
    rng = np.random.default_rng(77)
    s, n = 5, 4_000
    idx = rng.integers(0, 16, n)
    sigma2s = np.array([0.005, 0.02, 0.05, 0.12, 0.3])
    unit = rng.normal(size=n) + 1j * rng.normal(size=n)
    received = qam16.points[idx][None, :] + np.sqrt(sigma2s)[:, None] * unit[None, :]
    return received, sigma2s


class TestMultiSigmaParity:
    """Batched (S, n) sweep kernels agree with the per-SNR kernels per slice."""

    def test_maxlog_multi_bit_identical_per_snr(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16, backend="numpy")
        multi = ml.llrs_multi(received, sigma2s)
        assert multi.shape == (5, received.shape[1], 4)
        for s in range(sigma2s.size):
            assert np.array_equal(multi[s], ml.llrs(received[s], sigma2s[s]))

    def test_logmap_multi_bit_identical_per_snr(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ex = ExactLogMAPDemapper(qam16, backend="numpy")
        multi = ex.llrs_multi(received, sigma2s)
        for s in range(sigma2s.size):
            assert np.array_equal(multi[s], ex.llrs(received[s], sigma2s[s]))

    def test_float32_multi_within_documented_tolerance(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        m64 = MaxLogDemapper(qam16, backend="numpy").llrs_multi(received, sigma2s)
        m32 = MaxLogDemapper(qam16, backend="numpy32").llrs_multi(received, sigma2s)
        assert np.abs(m32 - m64).max() <= FLOAT32_LLR_RTOL * np.abs(m64).max()

    def test_float32_multi_matches_own_scalar_kernel(self, qam16, sweep_received):
        # within the float32 tier, batching must not change a single bit
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16, backend="numpy32")
        multi = ml.llrs_multi(received, sigma2s)
        for s in range(sigma2s.size):
            assert np.array_equal(multi[s], ml.llrs(received[s], sigma2s[s]))

    def test_tiling_boundaries_do_not_change_results(self, qam16, sweep_received, monkeypatch):
        import repro.backend.numpy_backend as npb

        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16, backend="numpy")
        ref = ml.llrs_multi(received, sigma2s)
        for tile in (97, 1000, 4_000, 19_999, 10**9):  # ragged tails + single tile
            monkeypatch.setattr(npb, "MULTI_SIGMA_TILE", tile)
            assert np.array_equal(ml.llrs_multi(received, sigma2s), ref)

    def test_multi_out_parameter_is_filled_in_place(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16)
        out = np.empty((5, received.shape[1], 4))
        got = ml.llrs_multi(received, sigma2s, out=out)
        assert got is out
        assert np.array_equal(out, ml.llrs_multi(received, sigma2s))

    def test_multi_out_validated(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16)
        n = received.shape[1]
        with pytest.raises(ValueError, match="shape"):
            ml.llrs_multi(received, sigma2s, out=np.empty((5, n, 3)))
        with pytest.raises(ValueError, match="float64"):
            ml.llrs_multi(received, sigma2s, out=np.empty((5, n, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="contiguous"):
            ml.llrs_multi(received, sigma2s, out=np.empty((5, n, 8))[:, :, ::2])

    def test_multi_args_validated(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16)
        with pytest.raises(ValueError, match=r"\(S, n\)"):
            ml.llrs_multi(received[0], sigma2s)
        with pytest.raises(ValueError, match="one entry per received row"):
            ml.llrs_multi(received, sigma2s[:-1])
        with pytest.raises(ValueError, match="positive"):
            ml.llrs_multi(received, np.array([0.1, 0.2, -0.1, 0.1, 0.1]))

    def test_demap_bits_multi_matches_per_row(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16)
        bits = ml.demap_bits_multi(received)
        for s in range(sigma2s.size):
            assert np.array_equal(bits[s], ml.demap_bits(received[s], sigma2s[s]))

    def test_hard_fast_path_matches_llr_threshold(self, qam16, received):
        # the σ²-independent dispatch returns exactly the thresholded LLRs
        ml = MaxLogDemapper(qam16)
        via_llrs = (ml.llrs(received, 0.02) > 0).astype(np.int8)
        got = ml.demap_bits(received, 0.02)
        assert np.array_equal(got, via_llrs)
        assert got.dtype == via_llrs.dtype

    def test_squared_distances_matches_naive(self, qam16, received):
        d = HardDemapper(qam16, backend="numpy").squared_distances(received)
        diff = received[:, None] - qam16.points[None, :]
        assert np.array_equal(d, (diff.real**2 + diff.imag**2))
        assert d.dtype == np.float64


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestNumbaParity:
    def test_maxlog_hard_decisions_bit_identical(self, qam16, received):
        bnp = MaxLogDemapper(qam16, backend="numpy").demap_bits(received, 0.02)
        bjit = MaxLogDemapper(qam16, backend="numba").demap_bits(received, 0.02)
        assert np.array_equal(bnp, bjit)

    def test_hard_indices_bit_identical(self, qam16, received):
        inp = HardDemapper(qam16, backend="numpy").demap_indices(received)
        ijit = HardDemapper(qam16, backend="numba").demap_indices(received)
        assert np.array_equal(inp, ijit)

    def test_logmap_close(self, qam16, received):
        rnp = ExactLogMAPDemapper(qam16, backend="numpy").llrs(received, 0.02)
        rjit = ExactLogMAPDemapper(qam16, backend="numba").llrs(received, 0.02)
        np.testing.assert_allclose(rjit, rnp, rtol=1e-10, atol=1e-10)

    def test_maxlog_multi_matches_per_snr(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ml = MaxLogDemapper(qam16, backend="numba")
        multi = ml.llrs_multi(received, sigma2s)
        for s in range(sigma2s.size):
            assert np.array_equal(multi[s], ml.llrs(received[s], sigma2s[s]))

    def test_logmap_multi_matches_per_snr(self, qam16, sweep_received):
        received, sigma2s = sweep_received
        ex = ExactLogMAPDemapper(qam16, backend="numba")
        multi = ex.llrs_multi(received, sigma2s)
        for s in range(sigma2s.size):
            np.testing.assert_allclose(
                multi[s], ex.llrs(received[s], sigma2s[s]), rtol=1e-12, atol=1e-12
            )


class TestWorkspace:
    def test_same_key_same_shape_reuses_buffer(self):
        ws = Workspace()
        a = ws.scratch("a", (16, 4))
        b = ws.scratch("a", (16, 4))
        assert a is b
        hits, misses = ws.stats
        assert (hits, misses) == (1, 1)

    def test_shape_change_reallocates(self):
        ws = Workspace()
        a = ws.scratch("a", (16, 4))
        b = ws.scratch("a", (8, 4))
        assert a is not b and b.shape == (8, 4)

    def test_dtype_keyed(self):
        ws = Workspace()
        a = ws.scratch("a", (4,), np.float64)
        b = ws.scratch("a", (4,), np.float32)
        assert a.dtype == np.float64 and b.dtype == np.float32

    def test_thread_isolation(self):
        import threading

        ws = Workspace()
        main_buf = ws.scratch("x", (32,))
        seen = {}

        def worker():
            seen["buf"] = ws.scratch("x", (32,))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["buf"] is not main_buf

    def test_steady_state_allocates_nothing(self, qam16, received):
        ml = MaxLogDemapper(qam16, backend="numpy")
        out = np.empty((received.size, 4))
        ml.llrs(received, 0.02, out=out)  # warm the workspace
        ws = ml.backend.workspace
        h0, m0 = ws.stats
        for _ in range(3):
            ml.llrs(received, 0.02, out=out)
        h1, m1 = ws.stats
        assert m1 == m0  # no new allocations in steady state
        assert h1 > h0


class TestPaddedBitSets:
    def test_rows_partition_the_point_set(self, qam16):
        bs = PaddedBitSets.from_bit_matrix(qam16.bit_matrix)
        for j in range(bs.k):
            z, o = set(bs.row(j, 0).tolist()), set(bs.row(j, 1).tolist())
            assert z | o == set(range(16)) and not (z & o)

    def test_padding_repeats_a_member(self):
        # 3 bits/symbol PSK-like labels: uneven sets still pad validly
        bm = np.array([[0, 0], [0, 1], [1, 1], [1, 1]])
        bs = PaddedBitSets.from_bit_matrix(bm)
        assert bs.table.shape == (4, 3)
        for r in range(4):
            padded = bs.table[r, bs.sizes[r]:]
            assert all(p in bs.table[r, : bs.sizes[r]] for p in padded)


class TestParallelSimulator:
    def _demap(self, qam16):
        return functools.partial(MaxLogDemapper(qam16).demap_bits, sigma2=0.05)

    def test_worker_count_invariance(self, qam16):
        fac = AWGNFactory(8.0, 4)
        demap = self._demap(qam16)
        kw = dict(rng=7, batch_size=8192, channel_factory=fac)
        r1 = simulate_ber(qam16, None, demap, 50_000, n_workers=1, **kw)
        r2 = simulate_ber(qam16, None, demap, 50_000, n_workers=2, **kw)
        r3 = simulate_ber(qam16, None, demap, 50_000, n_workers=3, **kw)
        assert r1 == r2 == r3
        assert r1.bits == 50_000 * 4

    def test_worker_count_invariance_with_early_stop(self, qam16):
        fac = AWGNFactory(6.0, 4)
        demap = self._demap(qam16)
        kw = dict(rng=3, batch_size=4096, channel_factory=fac, max_errors=80)
        r1 = simulate_ber(qam16, None, demap, 400_000, n_workers=1, **kw)
        r2 = simulate_ber(qam16, None, demap, 400_000, n_workers=2, **kw)
        assert r1 == r2
        assert r1.bit_errors >= 80
        assert r1.symbols < 400_000  # actually stopped early

    def test_chunked_mode_is_seed_reproducible(self, qam16):
        fac = AWGNFactory(8.0, 4)
        demap = self._demap(qam16)
        a = simulate_ber(qam16, None, demap, 30_000, rng=42, batch_size=8192, channel_factory=fac)
        b = simulate_ber(qam16, None, demap, 30_000, rng=42, batch_size=8192, channel_factory=fac)
        c = simulate_ber(qam16, None, demap, 30_000, rng=43, batch_size=8192, channel_factory=fac)
        assert a == b
        assert a != c

    def test_api_selected_tier_reaches_worker_processes(self, qam16):
        # regression: workers don't inherit set_backend state, so the parent
        # ships its resolved tier into each chunk; counts must stay invariant
        demap = functools.partial(MaxLogDemapper(qam16).demap_bits, sigma2=0.05)
        fac = AWGNFactory(8.0, 4)
        kw = dict(rng=13, batch_size=8192, channel_factory=fac)
        with use_backend("numpy32"):
            r1 = simulate_ber(qam16, None, demap, 20_000, n_workers=1, **kw)
            r2 = simulate_ber(qam16, None, demap, 20_000, n_workers=2, **kw)
        assert r1 == r2

    def test_backend_pinned_demapper_is_picklable_to_workers(self, qam16):
        # regression: the workspace's thread-local must not leak into pickles
        demap = functools.partial(
            MaxLogDemapper(qam16, backend="numpy32").demap_bits, sigma2=0.05
        )
        fac = AWGNFactory(8.0, 4)
        kw = dict(rng=5, batch_size=8192, channel_factory=fac)
        r1 = simulate_ber(qam16, None, demap, 20_000, n_workers=1, **kw)
        r2 = simulate_ber(qam16, None, demap, 20_000, n_workers=2, **kw)
        assert r1 == r2

    def test_channel_and_factory_together_rejected(self, qam16):
        from repro.channels import AWGNChannel

        with pytest.raises(ValueError, match="not both"):
            simulate_ber(
                qam16, AWGNChannel(8.0, 4), self._demap(qam16), 1000,
                channel_factory=AWGNFactory(10.0, 4),
            )

    def test_workers_without_factory_raises(self, qam16):
        from repro.channels import AWGNChannel

        with pytest.raises(ValueError, match="channel_factory"):
            simulate_ber(qam16, AWGNChannel(8.0, 4), self._demap(qam16), 1000, n_workers=2)

    def test_missing_channel_raises(self, qam16):
        with pytest.raises(ValueError, match="channel is required"):
            simulate_ber(qam16, None, self._demap(qam16), 1000)

    def test_sweep_snr_parallel_matches_sequential(self, qam16):
        demap = self._demap(qam16)

        def runner(snr_db):
            return simulate_ber(
                qam16, None, demap, 20_000, rng=11, batch_size=8192,
                channel_factory=AWGNFactory(snr_db, 4),
            )

        snrs = [4.0, 6.0, 8.0]
        seq = sweep_snr(snrs, runner)
        par = sweep_snr(snrs, runner, n_workers=3)
        assert list(seq) == list(par) == snrs
        assert all(seq[s] == par[s] for s in snrs)


# -- viterbi_decode kernel (the serving coded path's ACS) ---------------------
def _viterbi_fixture(code, n_blocks=6, n_info=64, seed=77):
    """Random LLR blocks plus their reference decodes for one code."""
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(n_blocks):
        llrs = rng.normal(size=(n_info + code.k - 1, code.n_out)) * 4.0
        blocks.append((llrs, code.decode_soft(llrs)))
    return blocks


class TestViterbiParity:
    """``backend.viterbi_decode`` is bit-identical to the pure-python
    reference ACS (``ConvolutionalCode._viterbi``) — decoded bits AND path
    metric, on every tier.  This is the contract that lets the serving
    engine dispatch the coded path through the kernel without entering the
    determinism suite's blast radius."""

    CODES = [
        ((0b111, 0b101), 3),            # classic K=3 (7,5)
        ((0b10011, 0b11101), 5),        # K=5 rate-1/2
        ((0b1111001, 0b1011011, 0b1100101), 7),  # K=7 rate-1/3
    ]

    @pytest.mark.parametrize("tier", ["numpy", "numpy32"])
    @pytest.mark.parametrize("generators,K", CODES)
    def test_bit_identical_to_reference(self, tier, generators, K):
        from repro.ecc.convolutional import ConvolutionalCode

        code = ConvolutionalCode(generators, K)
        be = backend_from_name(tier)
        for llrs, ref in _viterbi_fixture(code):
            got = code.decode_soft(llrs, backend=be)
            assert np.array_equal(got.data, ref.data)
            assert got.path_metric == ref.path_metric

    @pytest.mark.parametrize("tier", ["numpy", "numpy32"])
    def test_noiseless_roundtrip_exact(self, tier):
        from repro.ecc.convolutional import ConvolutionalCode

        code = ConvolutionalCode((0b111, 0b101), 3)
        be = backend_from_name(tier)
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, 120).astype(np.int8)
        pseudo = (2.0 * code.encode(data).astype(np.float64) - 1.0) * 4.0
        res = code.decode_soft(pseudo.reshape(-1, 2), backend=be)
        assert np.array_equal(res.data, data)

    def test_grouped_dispatch_matches_solo(self, qam16):
        """grouped_viterbi_decode rows == solo decode_soft per block."""
        from repro.backend.dispatch import grouped_viterbi_decode
        from repro.ecc.convolutional import ConvolutionalCode

        code = ConvolutionalCode((0b111, 0b101), 3)
        fixture = _viterbi_fixture(code, n_blocks=5)
        stack = np.stack([llrs for llrs, _ in fixture])
        be = backend_from_name("numpy")
        results = grouped_viterbi_decode(code, stack, backend=be)
        tail = code.k - 1
        for (bits, metric), (_, ref) in zip(results, fixture):
            assert np.array_equal(bits[: bits.size - tail], ref.data)
            assert metric == ref.path_metric

    def test_branch_metric_shape_validated(self):
        be = backend_from_name("numpy")
        src = np.zeros((4, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            be.viterbi_decode(np.zeros((5, 4, 3)), src, src)
        with pytest.raises(ValueError):
            be.viterbi_decode(np.zeros((5, 4, 2)), np.zeros((3, 2), np.int64), src)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestNumbaViterbiParity:
    @pytest.mark.parametrize("generators,K", TestViterbiParity.CODES)
    def test_bit_identical_to_reference(self, generators, K):
        from repro.ecc.convolutional import ConvolutionalCode

        code = ConvolutionalCode(generators, K)
        be = backend_from_name("numba")
        for llrs, ref in _viterbi_fixture(code):
            got = code.decode_soft(llrs, backend=be)
            assert np.array_equal(got.data, ref.data)
            assert got.path_metric == ref.path_metric
