"""Wiener phase-noise channel tests."""

import numpy as np
import pytest

from repro.channels.phase_noise import WienerPhaseNoiseChannel


class TestWienerPhaseNoise:
    def test_zero_linewidth_preserves_initial_phase(self, rng):
        ch = WienerPhaseNoiseChannel(0.0, initial_phase=0.3, rng=rng)
        z = np.ones(50, dtype=complex)
        assert np.allclose(ch(z), np.exp(1j * 0.3))

    def test_energy_preserved(self, rng):
        ch = WienerPhaseNoiseChannel(0.05, rng=rng)
        z = rng.normal(size=100) + 1j * rng.normal(size=100)
        assert np.allclose(np.abs(ch(z)), np.abs(z))

    def test_variance_grows_linearly(self):
        """Wiener process: Var[φ_t] = t·σ² (use the unwrapped true phase —
        np.angle would wrap realisations beyond ±π)."""
        sigma = 0.02
        n = 2000
        phases = []
        for seed in range(200):
            ch = WienerPhaseNoiseChannel(sigma, rng=seed)
            ch(np.ones(n, dtype=complex))
            phases.append(ch.current_phase)
        measured_var = np.var(phases)
        assert np.isclose(measured_var, n * sigma**2, rtol=0.3)

    def test_phase_persists_across_calls(self, rng):
        ch = WienerPhaseNoiseChannel(0.05, rng=1)
        ch(np.ones(100, dtype=complex))
        phase_mid = ch.current_phase
        y = ch(np.ones(1, dtype=complex))
        # the next symbol continues from the stored phase (one more step)
        assert abs(np.angle(y[0]) - phase_mid) < 0.5

    def test_reset(self):
        ch = WienerPhaseNoiseChannel(0.1, initial_phase=0.0, rng=2)
        ch(np.ones(100, dtype=complex))
        ch.reset()
        assert ch.current_phase == 0.0

    def test_backward_rotates_by_conjugate(self, rng):
        ch = WienerPhaseNoiseChannel(0.05, rng=3)
        z = rng.normal(size=10) + 1j * rng.normal(size=10)
        y = ch.forward(z)
        rot = y / z
        g = rng.normal(size=(10, 2))
        back = ch.backward(g)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(rot)
        assert np.allclose(back[:, 0] + 1j * back[:, 1], gc)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            WienerPhaseNoiseChannel(0.1).backward(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            WienerPhaseNoiseChannel(-0.1)

    def test_degrades_static_receiver_over_time(self):
        """The motivating behaviour: a fixed demapper slowly rots as the
        phase random-walks away — the monitor/retrain loop's reason to
        exist."""
        from repro.channels import AWGNChannel, CompositeChannel
        from repro.modulation import MaxLogDemapper, qam_constellation, random_indices

        qam = qam_constellation(16)
        ml = MaxLogDemapper(qam)
        ch = CompositeChannel([
            WienerPhaseNoiseChannel(0.002, rng=4),
            AWGNChannel(10.0, 4, rng=5),
        ])
        rng = np.random.default_rng(6)
        bers = []
        for _ in range(10):
            idx = random_indices(rng, 20_000, 16)
            y = ch.forward(qam.points[idx])
            bers.append(np.mean(ml.demap_bits(y, 0.01) != qam.bit_matrix[idx]))
        assert bers[-1] > bers[0] + 0.02  # materially worse by the end
