"""Channel-zoo factories: construction, pickling, and chunked-mode invariance."""

from __future__ import annotations

import functools
import pickle

import numpy as np
import pytest

from repro.channels import (
    AWGNChannel,
    AWGNFactory,
    CFOChannel,
    CFOFactory,
    CompositeChannel,
    CompositeFactory,
    IQImbalanceChannel,
    IQImbalanceFactory,
    PhaseNoiseFactory,
    PhaseOffsetChannel,
    PhaseOffsetFactory,
    RappPAChannel,
    RappPAFactory,
    RayleighFactory,
    RayleighFadingChannel,
    RicianFactory,
    RicianFadingChannel,
    WienerPhaseNoiseChannel,
)
from repro.link import simulate_ber
from repro.modulation import MaxLogDemapper, qam_constellation


@pytest.fixture
def qam16():
    return qam_constellation(16)


@pytest.fixture
def demap(qam16):
    return functools.partial(MaxLogDemapper(qam16).demap_bits, sigma2=0.05)


class TestConstruction:
    CASES = [
        (AWGNFactory(8.0, 4), AWGNChannel),
        (RayleighFactory(block_size=64, coherent=True), RayleighFadingChannel),
        (RicianFactory(k_factor=2.0, block_size=32), RicianFadingChannel),
        (PhaseNoiseFactory(0.01, initial_phase=0.2), WienerPhaseNoiseChannel),
        (PhaseOffsetFactory(np.pi / 4), PhaseOffsetChannel),
        (CFOFactory(1e-4), CFOChannel),
        (IQImbalanceFactory(0.5, 0.1), IQImbalanceChannel),
        (RappPAFactory(1.2, 3.0), RappPAChannel),
    ]

    @pytest.mark.parametrize("factory,cls", CASES, ids=lambda c: type(c).__name__)
    def test_builds_right_channel(self, factory, cls):
        ch = factory(np.random.default_rng(0))
        assert isinstance(ch, cls)

    @pytest.mark.parametrize("factory,cls", CASES, ids=lambda c: type(c).__name__)
    def test_picklable(self, factory, cls):
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory

    def test_parameters_forwarded(self):
        fading = RayleighFactory(block_size=64, coherent=True)(np.random.default_rng(0))
        assert fading.block_size == 64 and fading.coherent
        rician = RicianFactory(k_factor=2.0)(np.random.default_rng(0))
        assert rician.k_factor == 2.0
        pn = PhaseNoiseFactory(0.01, initial_phase=0.2)(np.random.default_rng(0))
        assert pn.linewidth_sigma == 0.01 and pn.initial_phase == 0.2

    def test_composite_builds_stages_in_order(self):
        fac = CompositeFactory((PhaseOffsetFactory(0.3), AWGNFactory(8.0, 4)))
        ch = fac(np.random.default_rng(0))
        assert isinstance(ch, CompositeChannel)
        assert isinstance(ch.stages[0], PhaseOffsetChannel)
        assert isinstance(ch.stages[1], AWGNChannel)

    def test_composite_validates_stages(self):
        with pytest.raises(ValueError, match="at least one stage"):
            CompositeFactory(())
        with pytest.raises(TypeError, match="not callable"):
            CompositeFactory((PhaseOffsetFactory(0.1), 42))

    def test_composite_stage_rngs_are_position_stable(self):
        """A deterministic stage never shifts the randomness of later stages."""
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        with_det = CompositeFactory((PhaseOffsetFactory(0.5), AWGNFactory(8.0, 4)))(rng_a)
        also_det = CompositeFactory((CFOFactory(1e-4), AWGNFactory(8.0, 4)))(rng_b)
        x = np.ones(64, dtype=complex)
        na = with_det.stages[1].forward(x) - x
        nb = also_det.stages[1].forward(x) - x
        assert np.array_equal(na, nb)


class TestChunkedInvariance:
    """Parallel simulate_ber covers the zoo with worker-invariant counts."""

    def _run(self, qam16, demap, factory, n_workers, seed=9):
        return simulate_ber(
            qam16, None, demap, 24_576, rng=seed, batch_size=8192,
            channel_factory=factory, n_workers=n_workers,
        )

    @pytest.mark.parametrize(
        "factory",
        [
            CompositeFactory((RayleighFactory(block_size=128, coherent=True),
                              AWGNFactory(8.0, 4))),
            CompositeFactory((PhaseNoiseFactory(0.003), AWGNFactory(8.0, 4))),
            CompositeFactory((PhaseOffsetFactory(0.1), AWGNFactory(8.0, 4))),
            CompositeFactory((CFOFactory(2e-5), IQImbalanceFactory(0.4, 0.02),
                              RappPAFactory(1.5, 2.0), AWGNFactory(10.0, 4))),
        ],
        ids=["fading", "phase_noise", "phase_offset", "cfo_iq_rapp"],
    )
    def test_worker_count_invariance(self, qam16, demap, factory):
        r1 = self._run(qam16, demap, factory, 1)
        r2 = self._run(qam16, demap, factory, 2)
        assert r1 == r2
        assert 0 < r1.ber < 0.5

    def test_seed_reproducible(self, qam16, demap):
        fac = CompositeFactory((RicianFactory(k_factor=3.0, block_size=64, coherent=True),
                                AWGNFactory(8.0, 4)))
        a = self._run(qam16, demap, fac, 1, seed=1)
        b = self._run(qam16, demap, fac, 1, seed=1)
        c = self._run(qam16, demap, fac, 1, seed=2)
        assert a == b
        assert a != c


class TestCoherentGuard:
    def test_near_zero_gain_draw_stays_finite(self, monkeypatch):
        ch = RayleighFadingChannel(block_size=8, coherent=True,
                                   rng=np.random.default_rng(0))
        monkeypatch.setattr(ch, "_draw_gain", lambda: 0.0 + 0.0j)
        y = ch.forward(np.ones(16, dtype=complex))
        assert np.all(np.isfinite(y))
        # degenerate |h| ~ 0 blocks pass through unrotated
        assert np.array_equal(y, np.ones(16, dtype=complex))

    def test_normal_gains_still_normalised(self):
        ch = RayleighFadingChannel(block_size=4, coherent=True,
                                   rng=np.random.default_rng(3))
        y = ch.forward(np.ones(64, dtype=complex))
        assert np.allclose(np.abs(y), 1.0)
