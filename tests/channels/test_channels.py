"""Channel model tests: statistics, Jacobian/backward correctness."""

import numpy as np
import pytest

from repro.channels import (
    AWGNChannel,
    CFOChannel,
    CompositeChannel,
    IQImbalanceChannel,
    PhaseOffsetChannel,
    RappPAChannel,
    RayleighFadingChannel,
    RicianFadingChannel,
    TimeVaryingPhaseChannel,
    find_awgn,
    sigma2_from_snr,
)


def numerical_channel_jacobian_transpose(make_channel, z0, grad, eps=1e-6):
    """Finite-difference check of channel.backward via J^T g.

    ``make_channel`` is a zero-arg factory returning a *fresh* channel (so
    stateful channels like CFO restart their symbol counter per evaluation).
    Works for deterministic channels only.  Returns the numerical J^T g for
    each sample (treating the channel as an elementwise/per-sample map).
    """
    n = z0.size
    out = np.zeros((n, 2))
    for dim in range(2):
        dz = np.zeros(n, dtype=complex)
        dz += (eps if dim == 0 else 1j * eps)
        yp = make_channel().forward(z0 + dz)
        ym = make_channel().forward(z0 - dz)
        dy = (yp - ym) / (2 * eps)  # per-sample derivative (channels are diagonal)
        # J^T g: [dyr/dx, dyi/dx] . [gr, gi]
        out[:, dim] = dy.real * grad[:, 0] + dy.imag * grad[:, 1]
    return out


class TestSigmaFromSnr:
    def test_ebn0_formula(self):
        # Es=1, k=4: sigma2 = 1/(2*4*10^(snr/10))
        assert np.isclose(sigma2_from_snr(0.0, 4), 1 / 8)
        assert np.isclose(sigma2_from_snr(10.0, 4), 1 / 80)

    def test_esn0_formula(self):
        assert np.isclose(sigma2_from_snr(0.0, 4, snr_type="esn0"), 0.5)

    def test_custom_es(self):
        assert np.isclose(sigma2_from_snr(0.0, 2, es=2.0), 2 / (2 * 2))

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            sigma2_from_snr(0.0, 4, snr_type="bogus")


class TestAWGN:
    def test_noise_variance(self, rng):
        ch = AWGNChannel(6.0, 4, rng=rng)
        z = np.zeros(200_000, dtype=complex)
        y = ch(z)
        assert np.isclose(y.real.var(), ch.sigma2, rtol=0.03)
        assert np.isclose(y.imag.var(), ch.sigma2, rtol=0.03)

    def test_noise_zero_mean(self, rng):
        ch = AWGNChannel(0.0, 4, rng=rng)
        y = ch(np.zeros(100_000, dtype=complex))
        assert abs(y.mean()) < 0.01

    def test_backward_identity(self, rng):
        ch = AWGNChannel(5.0, 4, rng=rng)
        ch.forward(np.zeros(10, dtype=complex))
        g = rng.normal(size=(10, 2))
        assert np.array_equal(ch.backward(g), g)

    def test_reproducible_with_seed(self):
        y1 = AWGNChannel(3.0, 4, rng=1)(np.ones(8, dtype=complex))
        y2 = AWGNChannel(3.0, 4, rng=1)(np.ones(8, dtype=complex))
        assert np.allclose(y1, y2)

    def test_grad_shape_checked(self, rng):
        ch = AWGNChannel(5.0, 4, rng=rng)
        ch.forward(np.zeros(10, dtype=complex))
        with pytest.raises(ValueError):
            ch.backward(np.zeros((5, 2)))


class TestPhaseOffset:
    def test_rotation(self):
        ch = PhaseOffsetChannel(np.pi / 2)
        assert np.allclose(ch(np.array([1.0 + 0j])), np.array([1j]))

    def test_backward_is_inverse_rotation(self, rng):
        ch = PhaseOffsetChannel(0.7)
        z = rng.normal(size=20) + 1j * rng.normal(size=20)
        ch.forward(z)
        g = rng.normal(size=(20, 2))
        num = numerical_channel_jacobian_transpose(lambda: PhaseOffsetChannel(0.7), z, g)
        assert np.allclose(ch.backward(g), num, atol=1e-6)

    def test_energy_preserved(self, rng):
        z = rng.normal(size=100) + 1j * rng.normal(size=100)
        assert np.allclose(np.abs(PhaseOffsetChannel(1.1)(z)), np.abs(z))


class TestTimeVaryingPhase:
    def test_schedule_applied_per_symbol(self):
        ch = TimeVaryingPhaseChannel(lambda t: np.where(t < 2, 0.0, np.pi))
        y = ch(np.ones(4, dtype=complex))
        assert np.allclose(y, [1, 1, -1, -1])

    def test_counter_persists_across_calls(self):
        ch = TimeVaryingPhaseChannel(lambda t: np.where(t < 2, 0.0, np.pi))
        ch(np.ones(2, dtype=complex))
        y = ch(np.ones(2, dtype=complex))
        assert np.allclose(y, [-1, -1])
        assert ch.symbols_elapsed == 4

    def test_reset(self):
        ch = TimeVaryingPhaseChannel(lambda t: 0.1 * t)
        ch(np.ones(5, dtype=complex))
        ch.reset()
        assert ch.symbols_elapsed == 0

    def test_backward_before_forward(self):
        ch = TimeVaryingPhaseChannel(lambda t: 0 * t)
        with pytest.raises(RuntimeError):
            ch.backward(np.zeros((1, 2)))


class TestCFO:
    def test_linear_phase_ramp(self):
        eps = 0.01
        ch = CFOChannel(eps)
        y = ch(np.ones(10, dtype=complex))
        expected = np.exp(1j * 2 * np.pi * eps * np.arange(10))
        assert np.allclose(y, expected)

    def test_initial_phase(self):
        ch = CFOChannel(0.0, initial_phase=np.pi)
        assert np.allclose(ch(np.ones(3, dtype=complex)), -np.ones(3))

    def test_stream_continuity(self):
        ch = CFOChannel(0.05)
        y1 = ch(np.ones(4, dtype=complex))
        y2 = ch(np.ones(4, dtype=complex))
        both = CFOChannel(0.05)(np.ones(8, dtype=complex))
        assert np.allclose(np.concatenate([y1, y2]), both)

    def test_backward_matches_numerical(self, rng):
        z = rng.normal(size=6) + 1j * rng.normal(size=6)
        g = rng.normal(size=(6, 2))
        ch = CFOChannel(0.03)
        ch.forward(z)
        ana = ch.backward(g)
        num = numerical_channel_jacobian_transpose(lambda: CFOChannel(0.03), z, g)
        assert np.allclose(ana, num, atol=1e-6)


class TestIQImbalance:
    def test_perfect_balance_is_identity(self, rng):
        ch = IQImbalanceChannel(0.0, 0.0)
        z = rng.normal(size=10) + 1j * rng.normal(size=10)
        assert np.allclose(ch(z), z)

    def test_widely_linear_model(self):
        ch = IQImbalanceChannel(1.0, 0.1)
        z = np.array([0.3 + 0.7j])
        assert np.allclose(ch(z), ch.mu * z + ch.nu * np.conj(z))

    def test_backward_matches_numerical(self, rng):
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        g = rng.normal(size=(8, 2))
        ch = IQImbalanceChannel(0.8, 0.15)
        ch.forward(z)
        ana = ch.backward(g)
        num = numerical_channel_jacobian_transpose(lambda: IQImbalanceChannel(0.8, 0.15), z, g)
        assert np.allclose(ana, num, atol=1e-6)


class TestFading:
    def test_block_constant_gain(self):
        ch = RayleighFadingChannel(block_size=8, rng=0)
        y = ch(np.ones(8, dtype=complex))
        assert np.allclose(y, y[0])

    def test_gain_changes_across_blocks(self):
        ch = RayleighFadingChannel(block_size=4, rng=0)
        y = ch(np.ones(8, dtype=complex))
        assert not np.isclose(y[0], y[4])

    def test_unit_average_power(self):
        ch = RayleighFadingChannel(block_size=1, rng=3)
        y = ch(np.ones(200_000, dtype=complex))
        assert np.isclose(np.mean(np.abs(y) ** 2), 1.0, rtol=0.03)

    def test_coherent_mode_unit_modulus(self):
        ch = RayleighFadingChannel(block_size=4, coherent=True, rng=0)
        y = ch(np.ones(16, dtype=complex))
        assert np.allclose(np.abs(y), 1.0)

    def test_backward_is_conjugate_gain(self, rng):
        ch = RayleighFadingChannel(block_size=4, rng=0)
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        y = ch.forward(z)
        gains = y / z
        g = rng.normal(size=(8, 2))
        back = ch.backward(g)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(gains)
        assert np.allclose(back[:, 0] + 1j * back[:, 1], gc)

    def test_rician_high_k_near_los(self):
        ch = RicianFadingChannel(k_factor=1e6, block_size=1, rng=0)
        y = ch(np.ones(1000, dtype=complex))
        assert np.allclose(y, 1.0, atol=0.01)

    def test_rician_unit_power(self):
        ch = RicianFadingChannel(k_factor=3.0, block_size=1, rng=1)
        y = ch(np.ones(200_000, dtype=complex))
        assert np.isclose(np.mean(np.abs(y) ** 2), 1.0, rtol=0.03)


class TestRappPA:
    def test_linear_at_small_amplitude(self):
        ch = RappPAChannel(a_sat=1.0, p=2.0)
        z = np.array([0.01 + 0.01j])
        assert np.allclose(ch(z), z, rtol=1e-3)

    def test_saturates_large_input(self):
        ch = RappPAChannel(a_sat=1.0, p=2.0)
        y = ch(np.array([100.0 + 0j]))
        assert abs(y[0]) < 1.01

    def test_phase_preserved(self, rng):
        ch = RappPAChannel(a_sat=1.0, p=3.0)
        z = rng.normal(size=20) + 1j * rng.normal(size=20)
        y = ch(z)
        assert np.allclose(np.angle(y), np.angle(z))

    def test_backward_matches_numerical(self, rng):
        z = rng.normal(size=6) + 1j * rng.normal(size=6)
        g = rng.normal(size=(6, 2))
        ch = RappPAChannel(a_sat=1.2, p=2.0)
        ch.forward(z)
        ana = ch.backward(g)
        num = numerical_channel_jacobian_transpose(lambda: RappPAChannel(a_sat=1.2, p=2.0), z, g)
        assert np.allclose(ana, num, atol=1e-5)

    def test_p1db_point(self):
        ch = RappPAChannel(a_sat=1.0, p=2.0)
        r = ch.input_p1db
        y = ch(np.array([r + 0j]))
        gain_db = 20 * np.log10(abs(y[0]) / r)
        assert np.isclose(gain_db, -1.0, atol=1e-6)


class TestComposite:
    def test_order_of_application(self):
        ch = CompositeChannel([PhaseOffsetChannel(np.pi / 2), PhaseOffsetChannel(np.pi / 2)])
        assert np.allclose(ch(np.array([1.0 + 0j])), np.array([-1.0 + 0j]))

    def test_backward_reverses(self, rng):
        stages = [PhaseOffsetChannel(0.3), IQImbalanceChannel(0.5, 0.1)]
        ch = CompositeChannel(stages)
        z = rng.normal(size=5) + 1j * rng.normal(size=5)
        ch.forward(z)
        g = rng.normal(size=(5, 2))
        num = numerical_channel_jacobian_transpose(
            lambda: CompositeChannel([PhaseOffsetChannel(0.3), IQImbalanceChannel(0.5, 0.1)]), z, g
        )
        assert np.allclose(ch.backward(g), num, atol=1e-6)

    def test_find_awgn(self, rng):
        awgn = AWGNChannel(8.0, 4, rng=rng)
        ch = CompositeChannel([PhaseOffsetChannel(0.1), awgn])
        assert find_awgn(ch) is awgn
        assert find_awgn(PhaseOffsetChannel(0.1)) is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeChannel([])

    def test_non_channel_rejected(self):
        with pytest.raises(TypeError):
            CompositeChannel([lambda z: z])

    def test_reset_propagates(self):
        cfo = CFOChannel(0.01)
        ch = CompositeChannel([cfo])
        ch(np.ones(5, dtype=complex))
        ch.reset()
        assert cfo.symbols_elapsed == 0
