"""AESystem / E2ETrainer / ReceiverFinetuner / DemapperANN / metrics."""

import numpy as np
import pytest

from repro.autoencoder import (
    AESystem,
    DemapperANN,
    E2ETrainer,
    MapperANN,
    ReceiverFinetuner,
    TrainingConfig,
    bit_error_rate,
    bitwise_mutual_information,
    block_error_rate,
)
from repro.channels import AWGNChannel, CompositeChannel, PhaseOffsetChannel


class TestDemapperANN:
    def test_paper_topology_parameter_count(self, rng):
        d = DemapperANN(4, rng=rng)
        assert d.num_parameters() == 660  # 2-16-16-16-4 MLP

    def test_probabilities_in_unit_interval(self, rng):
        d = DemapperANN(4, rng=rng)
        p = d.probabilities(rng.normal(size=(20, 2)))
        assert np.all((p >= 0) & (p <= 1))

    def test_hard_bits_threshold(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(10, 2))
        assert np.array_equal(d.hard_bits(x), (d.logits(x) > 0).astype(np.int8))

    def test_symbol_labels_pack_bits(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(10, 2))
        bits = d.hard_bits(x)
        weights = np.array([8, 4, 2, 1])
        assert np.array_equal(d.symbol_labels(x), bits @ weights)

    def test_copy_is_deep(self, rng):
        d = DemapperANN(4, rng=rng)
        c = d.copy()
        x = rng.normal(size=(5, 2))
        assert np.allclose(d.logits(x), c.logits(x))
        c.parameters()[0].data += 1.0
        assert not np.allclose(d.logits(x), c.logits(x))

    def test_clone_untrained_differs(self, rng):
        d = DemapperANN(4, rng=rng)
        c = d.clone_untrained(rng=np.random.default_rng(5))
        x = rng.normal(size=(5, 2))
        assert not np.allclose(d.logits(x), c.logits(x))

    def test_validation(self):
        with pytest.raises(ValueError):
            DemapperANN(0)
        with pytest.raises(ValueError):
            DemapperANN(4, hidden=())


class TestMetrics:
    def test_bit_error_rate(self):
        assert bit_error_rate(np.array([0, 1, 1]), np.array([0, 0, 1])) == pytest.approx(1 / 3)

    def test_bit_error_rate_validation(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.zeros(2), np.zeros(3))

    def test_block_error_rate(self):
        hat = np.array([[0, 0], [1, 1], [0, 1]])
        true = np.array([[0, 0], [1, 0], [1, 0]])
        assert block_error_rate(hat, true) == pytest.approx(2 / 3)

    def test_mi_perfect_prediction(self):
        bits = np.array([[0, 1], [1, 0]])
        probs = np.where(bits == 1, 1 - 1e-12, 1e-12)
        assert bitwise_mutual_information(probs, bits) == pytest.approx(2.0, abs=1e-6)

    def test_mi_random_guessing_zero(self):
        bits = np.array([[0, 1], [1, 0]])
        probs = np.full((2, 2), 0.5)
        assert bitwise_mutual_information(probs, bits) == pytest.approx(0.0, abs=1e-9)

    def test_mi_clipped_nonnegative(self, rng):
        # systematically wrong predictions would give negative MI; clipped to 0
        bits = np.ones((50, 2))
        probs = np.full((50, 2), 0.01)
        assert bitwise_mutual_information(probs, bits) == 0.0


class TestAESystem:
    def make_system(self, rng, snr=8.0):
        mapper = MapperANN(16, init="qam", rng=rng)
        demapper = DemapperANN(4, rng=rng)
        return AESystem(mapper, demapper, AWGNChannel(snr, 4, rng=rng))

    def test_transmit_shape(self, rng):
        s = self.make_system(rng)
        y = s.transmit(rng.integers(0, 16, size=32))
        assert y.shape == (32,)
        assert np.iscomplexobj(y)

    def test_mismatched_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            AESystem(MapperANN(16, rng=rng), DemapperANN(3, rng=rng), AWGNChannel(8, 4))

    def test_train_step_reduces_loss(self, rng):
        s = self.make_system(rng)
        from repro.nn import Adam

        params = s.mapper.parameters() + s.demapper.parameters()
        opt = Adam(params, lr=2e-3)
        first = None
        for i in range(300):
            opt.zero_grad()
            loss = s.train_step(rng, 256)
            opt.step()
            if i == 0:
                first = loss
        assert loss < first * 0.5

    def test_evaluate_fields(self, rng):
        s = self.make_system(rng)
        res = s.evaluate(rng, 10_000)
        assert set(res) >= {"ber", "bce", "mutual_information", "bit_errors", "bits"}
        assert 0 <= res["ber"] <= 1
        assert res["bits"] == 40_000

    def test_evaluate_validation(self, rng):
        with pytest.raises(ValueError):
            self.make_system(rng).evaluate(rng, 0)


class TestE2ETrainer:
    def test_loss_decreases(self, rng):
        mapper = MapperANN(16, init="qam", rng=rng)
        demapper = DemapperANN(4, rng=rng)
        system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
        hist = E2ETrainer(system, TrainingConfig(steps=400, batch_size=256)).run(rng)
        assert hist.final_loss < hist.initial_loss * 0.5

    def test_trained_ber_near_conventional(self, trained_system_8db):
        res = trained_system_8db.evaluate(np.random.default_rng(0), 150_000)
        from repro.utils.stats import gray_qam_ber_approx

        assert res["ber"] < 2.0 * gray_qam_ber_approx(8.0)

    def test_history_records(self, rng):
        mapper = MapperANN(16, rng=rng)
        demapper = DemapperANN(4, rng=rng)
        system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
        hist = E2ETrainer(system, TrainingConfig(steps=50, log_every=10)).run(rng)
        assert hist.steps[0] == 0
        assert hist.steps[-1] == 49

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(steps=0)
        with pytest.raises(ValueError):
            TrainingConfig(lr=-1)
        with pytest.raises(ValueError):
            TrainingConfig(scheduler="warp")


class TestReceiverFinetuner:
    def test_recovers_phase_offset(self, trained_system_8db):
        # copy so the shared fixture stays pristine
        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            trained_system_8db.channel,
        )
        rng = np.random.default_rng(11)
        const = system.mapper.constellation()
        rotated = CompositeChannel(
            [PhaseOffsetChannel(np.pi / 4), AWGNChannel(8.0, 4, rng=rng)]
        )
        # before retraining the rotated channel is catastrophic
        system.channel = rotated
        before = system.evaluate(rng, 30_000)["ber"]
        assert before > 0.2
        ReceiverFinetuner(
            system, TrainingConfig(steps=500, batch_size=512), constellation=const
        ).run(rotated, rng)
        after = system.evaluate(rng, 60_000)["ber"]
        assert after < 0.03  # near the 8 dB baseline (~0.01)

    def test_mapper_untouched(self, trained_system_8db, rng):
        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            AWGNChannel(8.0, 4, rng=rng),
        )
        table_before = system.mapper.table.data.copy()
        ReceiverFinetuner(system, TrainingConfig(steps=30, batch_size=128)).run(
            system.channel, rng
        )
        assert np.array_equal(system.mapper.table.data, table_before)
