"""MapperANN: normalisation semantics and the non-trivial gradient."""

import numpy as np
import pytest

from repro.autoencoder import MapperANN
from repro.nn.gradcheck import gradcheck_module


class TestForward:
    def test_unit_average_power_of_table(self, rng):
        m = MapperANN(16, init="random", rng=rng)
        table = m.normalized_table()
        assert np.isclose(np.mean(np.sum(table**2, axis=1)), 1.0)

    def test_forward_selects_rows(self, rng):
        m = MapperANN(16, init="random", rng=rng)
        out = m.forward(np.array([3, 3, 5]))
        assert np.allclose(out[0], out[1])
        assert not np.allclose(out[0], out[2])

    def test_qam_init_close_to_gray_qam(self, rng):
        from repro.modulation import qam_constellation

        m = MapperANN(16, init="qam", rng=rng)
        ref = qam_constellation(16).points
        got = m.constellation().points
        assert np.allclose(got, ref, atol=0.01)

    def test_forward_batch_shape(self, rng):
        m = MapperANN(16, rng=rng)
        assert m.forward(rng.integers(0, 16, size=50)).shape == (50, 2)

    def test_rejects_float_labels(self, rng):
        with pytest.raises(TypeError):
            MapperANN(16, rng=rng).forward(np.array([0.0]))

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(IndexError):
            MapperANN(16, rng=rng).forward(np.array([16]))

    def test_order_validation(self):
        with pytest.raises(ValueError):
            MapperANN(10)

    def test_qam_init_requires_square(self):
        with pytest.raises(ValueError):
            MapperANN(32, init="qam")

    def test_random_init_allows_any_power_of_two(self, rng):
        m = MapperANN(32, init="random", rng=rng)
        assert m.order == 32
        assert m.bits_per_symbol == 5

    def test_invalid_init_name(self):
        with pytest.raises(ValueError):
            MapperANN(16, init="zeros")


class TestGradient:
    def test_gradcheck_random_init(self, rng):
        m = MapperANN(8, init="random", rng=rng)
        idx = rng.integers(0, 8, size=10)
        assert gradcheck_module(m, idx, check_input_grad=False)

    def test_gradcheck_qam_init(self, rng):
        m = MapperANN(16, init="qam", rng=rng)
        idx = rng.integers(0, 16, size=12)
        assert gradcheck_module(m, idx, check_input_grad=False)

    def test_gradcheck_repeated_indices(self, rng):
        # scatter-add path: same row selected many times
        m = MapperANN(4, init="random", rng=rng)
        idx = np.array([1, 1, 1, 1, 2])
        assert gradcheck_module(m, idx, check_input_grad=False)

    def test_normalisation_gradient_component_nonzero(self, rng):
        # the rank-one correction must touch rows NOT in the batch
        m = MapperANN(8, init="random", rng=rng)
        idx = np.array([0, 1])
        m.forward(idx)
        m.backward(np.ones((2, 2)))
        assert np.any(m.table.grad[5] != 0.0)


class TestConstellation:
    def test_constellation_unit_energy(self, rng):
        m = MapperANN(16, init="random", rng=rng)
        assert np.isclose(m.constellation().average_energy, 1.0)

    def test_collapsed_table_raises(self, rng):
        m = MapperANN(4, init="random", rng=rng)
        m.table.data[...] = 0.0
        with pytest.raises(FloatingPointError):
            m.forward(np.array([0]))
