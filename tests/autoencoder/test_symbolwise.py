"""Symbol-wise (categorical) demapper head vs the paper's bitwise head."""

import numpy as np
import pytest

from repro.autoencoder import SymbolwiseDemapperANN, train_symbolwise_receiver
from repro.channels import AWGNChannel
from repro.modulation import random_indices
from repro.utils.complexmath import complex_to_real2
from repro.utils.stats import gray_qam_ber_approx


class TestConstruction:
    def test_topology(self, rng):
        d = SymbolwiseDemapperANN(16, rng=rng)
        assert d.order == 16
        assert d.bits_per_symbol == 4
        x = rng.normal(size=(7, 2))
        assert d.forward(x).shape == (7, 16)

    def test_posteriors_normalised(self, rng):
        d = SymbolwiseDemapperANN(16, rng=rng)
        p = d.symbol_posteriors(rng.normal(size=(20, 2)))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_bit_llr_marginalisation_consistency(self, rng):
        """Exact check: LLRs computed from the softmax posterior by direct
        marginalisation must equal the logsumexp shortcut."""
        d = SymbolwiseDemapperANN(16, rng=rng)
        x = rng.normal(size=(10, 2))
        p = d.symbol_posteriors(x)
        llrs = d.bit_llrs(x)
        bm = np.array([[int(b) for b in format(i, "04b")] for i in range(16)])
        for j in range(4):
            p1 = p[:, bm[:, j] == 1].sum(axis=1)
            p0 = p[:, bm[:, j] == 0].sum(axis=1)
            assert np.allclose(llrs[:, j], np.log(p1 / p0), atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SymbolwiseDemapperANN(12)


class TestTrainingParity:
    @pytest.fixture(scope="class")
    def trained(self, trained_constellation_8db):
        d = SymbolwiseDemapperANN(16, rng=np.random.default_rng(3))
        ch = AWGNChannel(8.0, 4, rng=np.random.default_rng(4))
        trace = train_symbolwise_receiver(
            d, trained_constellation_8db.points, ch,
            steps=1200, batch_size=512, rng=np.random.default_rng(5),
        )
        return d, trace

    def test_loss_decreases(self, trained):
        _, trace = trained
        assert trace[-1] < trace[0] * 0.3

    def test_ber_matches_bitwise_head(self, trained, trained_constellation_8db):
        d, _ = trained
        rng = np.random.default_rng(6)
        const = trained_constellation_8db
        idx = random_indices(rng, 150_000, 16)
        y = AWGNChannel(8.0, 4, rng=rng)(const.points[idx])
        ber = np.mean(d.hard_bits(complex_to_real2(y)) != const.bit_matrix[idx])
        assert ber < 1.6 * gray_qam_ber_approx(8.0)

    def test_extraction_works_on_categorical_head(self, trained, trained_constellation_8db):
        """The hybrid pipeline is head-agnostic: extraction through the
        bit-probability interface works on the softmax head too."""
        from repro.extraction import HybridDemapper, extract_centroids, sample_decision_regions

        d, _ = trained
        grid = sample_decision_regions(d.bit_probability_fn(), extent=1.5, resolution=128)
        cents = extract_centroids(grid, 16, method="lsq").fill_missing(
            trained_constellation_8db.points
        )
        hybrid = HybridDemapper(constellation=cents.as_constellation(),
                                sigma2=AWGNChannel(8.0, 4).sigma2)
        rng = np.random.default_rng(7)
        const = trained_constellation_8db
        idx = random_indices(rng, 150_000, 16)
        y = AWGNChannel(8.0, 4, rng=rng)(const.points[idx])
        ber = np.mean(hybrid.demap_bits(y) != const.bit_matrix[idx])
        assert ber < 2.0 * gray_qam_ber_approx(8.0)

    def test_map_symbol_decisions(self, trained, trained_constellation_8db):
        d, _ = trained
        rng = np.random.default_rng(8)
        const = trained_constellation_8db
        idx = random_indices(rng, 50_000, 16)
        y = AWGNChannel(8.0, 4, rng=rng)(const.points[idx])
        ser = np.mean(d.symbol_labels(complex_to_real2(y)) != idx)
        assert ser < 0.06  # ~4x the BER at 8 dB
