"""Consistency of the demapper's inference views and the system helpers."""

import numpy as np
import pytest

from repro.autoencoder import AESystem, DemapperANN, MapperANN
from repro.channels import AWGNChannel
from repro.utils.complexmath import complex_to_real2


class TestDemapperViews:
    def test_probabilities_are_sigmoid_of_logits(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(30, 2))
        p = d.probabilities(x)
        z = d.logits(x)
        assert np.allclose(p, 1.0 / (1.0 + np.exp(-z)))

    def test_bit_probability_fn_is_bound_method(self, rng):
        d = DemapperANN(4, rng=rng)
        fn = d.bit_probability_fn()
        x = rng.normal(size=(5, 2))
        assert np.allclose(fn(x), d.probabilities(x))

    def test_logits_alias_forward(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(5, 2))
        assert np.array_equal(d.logits(x), d.forward(x))

    def test_custom_hidden_widths(self, rng):
        d = DemapperANN(4, hidden=(8, 8), rng=rng)
        assert d.forward(rng.normal(size=(3, 2))).shape == (3, 4)
        # params: (2*8+8)+(8*8+8)+(8*4+4) = 24+72+36 = 132
        assert d.num_parameters() == 132


class TestInferencePath:
    """Workspace-aware inference: same numbers as forward, no allocations."""

    def test_infer_logits_matches_forward(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(64, 2))
        assert np.array_equal(d.infer_logits(x), d.forward(x))

    def test_infer_out_parameter_is_filled_in_place(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(16, 2))
        out = np.empty((16, 4))
        got = d.infer_logits(x, out=out)
        assert got is out
        assert np.array_equal(out, d.forward(x))

    def test_steady_state_allocates_nothing(self, rng):
        from repro.backend import get_backend

        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(128, 2))
        out = np.empty((128, 4))
        d.infer_logits(x, out=out)  # warm the per-layer scratch buffers
        ws = get_backend().workspace
        h0, m0 = ws.stats
        for _ in range(3):
            d.infer_logits(x, out=out)
        h1, m1 = ws.stats
        assert m1 == m0  # no new workspace allocations in steady state
        assert h1 > h0

    def test_infer_does_not_disturb_training_state(self, rng):
        # forward -> (inference views) -> backward must use forward's cache
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(8, 2))
        ref = DemapperANN(4)
        ref.load_state_dict(d.state_dict())

        logits = d.forward(x)
        d.hard_bits(rng.normal(size=(32, 2)))  # interleaved inference
        d.backward(np.ones_like(logits))

        ref_logits = ref.forward(x)
        ref.backward(np.ones_like(ref_logits))
        for p, q in zip(d.parameters(), ref.parameters()):
            assert np.array_equal(p.grad, q.grad)

    def test_symbol_labels_match_bit_packing(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(40, 2))
        bits = d.hard_bits(x)
        weights = (1 << np.arange(3, -1, -1))
        assert np.array_equal(d.symbol_labels(x), bits.astype(np.int64) @ weights)


class TestSystemHelpers:
    def test_receive_logits_matches_manual_path(self, trained_system_8db, rng):
        y = rng.normal(size=20) + 1j * rng.normal(size=20)
        via_system = trained_system_8db.receive_logits(y)
        manual = trained_system_8db.demapper.forward(complex_to_real2(y))
        assert np.array_equal(via_system, manual)

    def test_transmit_uses_current_channel(self, rng):
        mapper = MapperANN(16, rng=rng)
        demapper = DemapperANN(4, rng=rng)
        system = AESystem(mapper, demapper, AWGNChannel(30.0, 4, rng=rng))
        idx = np.arange(16)
        y = system.transmit(idx)
        # at 30 dB the received symbols sit almost exactly on the constellation
        pts = mapper.constellation().points
        assert np.abs(y - pts).max() < 0.15

    def test_receiver_step_only_touches_demapper(self, trained_system_8db, rng):
        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            trained_system_8db.channel,
        )
        table_before = system.mapper.table.data.copy()
        grads_before = [p.grad.copy() for p in system.mapper.parameters()]
        y = rng.normal(size=64) + 1j * rng.normal(size=64)
        bits = rng.integers(0, 2, size=(64, 4))
        system.receiver_step(y, bits)
        assert np.array_equal(system.mapper.table.data, table_before)
        for g0, p in zip(grads_before, system.mapper.parameters()):
            assert np.array_equal(g0, p.grad)  # no mapper gradients accumulated
