"""Consistency of the demapper's inference views and the system helpers."""

import numpy as np
import pytest

from repro.autoencoder import AESystem, DemapperANN, MapperANN
from repro.channels import AWGNChannel
from repro.utils.complexmath import complex_to_real2


class TestDemapperViews:
    def test_probabilities_are_sigmoid_of_logits(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(30, 2))
        p = d.probabilities(x)
        z = d.logits(x)
        assert np.allclose(p, 1.0 / (1.0 + np.exp(-z)))

    def test_bit_probability_fn_is_bound_method(self, rng):
        d = DemapperANN(4, rng=rng)
        fn = d.bit_probability_fn()
        x = rng.normal(size=(5, 2))
        assert np.allclose(fn(x), d.probabilities(x))

    def test_logits_alias_forward(self, rng):
        d = DemapperANN(4, rng=rng)
        x = rng.normal(size=(5, 2))
        assert np.array_equal(d.logits(x), d.forward(x))

    def test_custom_hidden_widths(self, rng):
        d = DemapperANN(4, hidden=(8, 8), rng=rng)
        assert d.forward(rng.normal(size=(3, 2))).shape == (3, 4)
        # params: (2*8+8)+(8*8+8)+(8*4+4) = 24+72+36 = 132
        assert d.num_parameters() == 132


class TestSystemHelpers:
    def test_receive_logits_matches_manual_path(self, trained_system_8db, rng):
        y = rng.normal(size=20) + 1j * rng.normal(size=20)
        via_system = trained_system_8db.receive_logits(y)
        manual = trained_system_8db.demapper.forward(complex_to_real2(y))
        assert np.array_equal(via_system, manual)

    def test_transmit_uses_current_channel(self, rng):
        mapper = MapperANN(16, rng=rng)
        demapper = DemapperANN(4, rng=rng)
        system = AESystem(mapper, demapper, AWGNChannel(30.0, 4, rng=rng))
        idx = np.arange(16)
        y = system.transmit(idx)
        # at 30 dB the received symbols sit almost exactly on the constellation
        pts = mapper.constellation().points
        assert np.abs(y - pts).max() < 0.15

    def test_receiver_step_only_touches_demapper(self, trained_system_8db, rng):
        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            trained_system_8db.channel,
        )
        table_before = system.mapper.table.data.copy()
        grads_before = [p.grad.copy() for p in system.mapper.parameters()]
        y = rng.normal(size=64) + 1j * rng.normal(size=64)
        bits = rng.integers(0, 2, size=(64, 4))
        system.receiver_step(y, bits)
        assert np.array_equal(system.mapper.table.data, table_before)
        for g0, p in zip(grads_before, system.mapper.parameters()):
            assert np.array_equal(g0, p.grad)  # no mapper gradients accumulated
