"""Convolutional code + Viterbi: known vectors, correction power, soft gain."""

import numpy as np
import pytest

from repro.ecc import ConvolutionalCode
from repro.utils.stats import q_function


@pytest.fixture(scope="module")
def k3():
    return ConvolutionalCode((0b111, 0b101), 3)


class TestEncoder:
    def test_textbook_vector(self, k3):
        """K=3 (7,5) code, input 1011: the classic example output."""
        coded = k3.encode(np.array([1, 0, 1, 1], dtype=np.int8))
        assert np.array_equal(coded, [1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1, 1])

    def test_all_zero_input(self, k3):
        assert not k3.encode(np.zeros(10, dtype=np.int8)).any()

    def test_length_with_termination(self, k3):
        assert k3.encode(np.zeros(10, dtype=np.int8)).size == k3.encoded_length(10) == 24

    def test_rate(self, k3):
        assert k3.rate == 0.5

    def test_linearity_over_gf2(self, k3, rng):
        a = rng.integers(0, 2, size=40, dtype=np.int8)
        b = rng.integers(0, 2, size=40, dtype=np.int8)
        assert np.array_equal(k3.encode(a ^ b), k3.encode(a) ^ k3.encode(b))

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvolutionalCode((0b111,), 3)  # rate 1 not supported
        with pytest.raises(ValueError):
            ConvolutionalCode((0b1111, 0b101), 3)  # generator too wide
        with pytest.raises(ValueError):
            ConvolutionalCode((3, 1), 1)
        k3b = ConvolutionalCode()
        with pytest.raises(ValueError):
            k3b.encode(np.array([[1, 0]]))
        with pytest.raises(ValueError):
            k3b.encode(np.array([2, 0]))


class TestHardViterbi:
    def test_noiseless_roundtrip(self, k3, rng):
        data = rng.integers(0, 2, size=100, dtype=np.int8)
        res = k3.decode_hard(k3.encode(data))
        assert np.array_equal(res.data, data)

    def test_corrects_scattered_errors(self, k3, rng):
        data = rng.integers(0, 2, size=300, dtype=np.int8)
        coded = k3.encode(data)
        bad = coded.copy()
        # one flip every ~40 coded bits: well within free-distance margin
        bad[::41] ^= 1
        res = k3.decode_hard(bad)
        assert np.array_equal(res.data, data)

    def test_corrects_any_single_flip(self, k3, rng):
        data = rng.integers(0, 2, size=30, dtype=np.int8)
        coded = k3.encode(data)
        for pos in range(coded.size):
            bad = coded.copy()
            bad[pos] ^= 1
            assert np.array_equal(k3.decode_hard(bad).data, data), f"pos {pos}"

    def test_length_validation(self, k3):
        with pytest.raises(ValueError):
            k3.decode_hard(np.zeros(7, dtype=np.int8))


class TestSoftViterbi:
    def test_high_confidence_llrs_roundtrip(self, k3, rng):
        data = rng.integers(0, 2, size=100, dtype=np.int8)
        coded = k3.encode(data)
        llrs = (2.0 * coded - 1.0) * 10.0  # llr>0 <=> bit 1
        res = k3.decode_soft(llrs)
        assert np.array_equal(res.data, data)

    def test_path_metric_of_true_path_is_max(self, k3, rng):
        data = rng.integers(0, 2, size=50, dtype=np.int8)
        coded = k3.encode(data)
        llrs = (2.0 * coded - 1.0) * 3.0
        res = k3.decode_soft(llrs)
        # true-path metric = sum of positive contributions of matching bits
        assert np.isclose(res.path_metric, llrs[coded == 1].sum())

    def test_soft_beats_hard_at_low_snr(self, k3):
        rng = np.random.default_rng(5)
        n_info = 4000
        data = rng.integers(0, 2, size=n_info, dtype=np.int8)
        coded = k3.encode(data)
        ebn0 = 10 ** (2.0 / 10)
        sigma = np.sqrt(1 / (2 * k3.rate * ebn0))
        y = (2.0 * coded - 1.0) + rng.normal(0, sigma, size=coded.shape)
        ber_hard = np.mean(k3.decode_hard((y > 0).astype(np.int8)).data != data)
        ber_soft = np.mean(k3.decode_soft(2 * y / sigma**2).data != data)
        assert ber_soft < ber_hard * 0.6

    def test_coding_gain_over_uncoded(self, k3):
        rng = np.random.default_rng(6)
        n_info = 4000
        data = rng.integers(0, 2, size=n_info, dtype=np.int8)
        coded = k3.encode(data)
        ebn0 = 10 ** (4.0 / 10)
        sigma = np.sqrt(1 / (2 * k3.rate * ebn0))
        y = (2.0 * coded - 1.0) + rng.normal(0, sigma, size=coded.shape)
        ber_soft = np.mean(k3.decode_soft(2 * y / sigma**2).data != data)
        ber_uncoded = float(q_function(np.sqrt(2 * ebn0)))
        assert ber_soft < ber_uncoded * 0.5


class TestLargerConstraintLength:
    def test_k5_roundtrip_and_correction(self, rng):
        # industry-standard K=5 (23, 35 octal) code
        code = ConvolutionalCode((0b10011, 0b11101), 5)
        data = rng.integers(0, 2, size=200, dtype=np.int8)
        coded = code.encode(data)
        bad = coded.copy()
        bad[::37] ^= 1
        assert np.array_equal(code.decode_hard(bad).data, data)

    def test_k5_stronger_than_k3(self):
        rng = np.random.default_rng(7)
        k3 = ConvolutionalCode((0b111, 0b101), 3)
        k5 = ConvolutionalCode((0b10011, 0b11101), 5)
        n_info = 4000
        data = rng.integers(0, 2, size=n_info, dtype=np.int8)
        ebn0 = 10 ** (3.0 / 10)
        sigma = np.sqrt(1 / (2 * 0.5 * ebn0))
        bers = {}
        for name, code in (("k3", k3), ("k5", k5)):
            coded = code.encode(data)
            y = (2.0 * coded - 1.0) + rng.normal(0, sigma, size=coded.shape)
            bers[name] = np.mean(code.decode_soft(2 * y / sigma**2).data != data)
        assert bers["k5"] <= bers["k3"]
