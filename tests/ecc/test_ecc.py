"""ECC substrate tests: Hamming, extended Hamming, repetition, CRC, interleavers."""

import numpy as np
import pytest

from repro.ecc import (
    BlockInterleaver,
    CRC8_CCITT,
    CRC16_CCITT,
    Crc,
    ExtendedHammingCode,
    HammingCode,
    RandomInterleaver,
    RepetitionCode,
)


class TestHamming74:
    @pytest.fixture
    def code(self):
        return HammingCode(3)

    def test_geometry(self, code):
        assert (code.n, code.k) == (7, 4)
        assert np.isclose(code.rate, 4 / 7)

    def test_roundtrip_all_messages(self, code):
        data = np.array([[(m >> i) & 1 for i in range(3, -1, -1)] for m in range(16)])
        cw = code.encode(data)
        res = code.decode(cw)
        assert np.array_equal(res.data, data)
        assert res.corrected == 0

    def test_corrects_every_single_bit_error(self, code, rng):
        data = rng.integers(0, 2, size=(7, 4))
        cw = code.encode(data)
        for block in range(7):
            for pos in range(7):
                bad = cw.copy()
                bad[block, pos] ^= 1
                res = code.decode(bad)
                assert np.array_equal(res.data, data), f"block {block} pos {pos}"
        # corrected count reported
        bad = cw.copy()
        bad[0, 3] ^= 1
        assert code.decode(bad).corrected == 1

    def test_flat_input_accepted(self, code, rng):
        data = rng.integers(0, 2, size=12)  # 3 blocks of 4
        cw = code.encode(data)
        assert cw.shape == (3, 7)

    def test_length_validation(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(5, dtype=np.int8))
        with pytest.raises(ValueError):
            code.decode(np.zeros((2, 6), dtype=np.int8))

    def test_nonbinary_rejected(self, code):
        with pytest.raises(ValueError):
            code.encode(np.full((1, 4), 2))

    def test_codewords_satisfy_parity(self, code, rng):
        data = rng.integers(0, 2, size=(50, 4))
        cw = code.encode(data)
        syndrome = (cw @ code._h.T) & 1
        assert not syndrome.any()

    def test_larger_code(self):
        code = HammingCode(4)  # (15, 11)
        assert (code.n, code.k) == (15, 11)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, size=(20, 11))
        cw = code.encode(data)
        cw[4, 9] ^= 1
        res = code.decode(cw)
        assert np.array_equal(res.data, data)

    def test_r_validation(self):
        with pytest.raises(ValueError):
            HammingCode(1)


class TestExtendedHamming:
    @pytest.fixture
    def code(self):
        return ExtendedHammingCode(3)

    def test_roundtrip(self, code, rng):
        data = rng.integers(0, 2, size=(20, 4))
        res = code.decode(code.encode(data))
        assert np.array_equal(res.data, data)
        assert res.corrected == 0
        assert res.detected_uncorrectable == 0

    def test_single_error_corrected(self, code, rng):
        data = rng.integers(0, 2, size=(5, 4))
        cw = code.encode(data)
        cw[2, 3] ^= 1
        res = code.decode(cw)
        assert np.array_equal(res.data, data)
        assert res.corrected == 1

    def test_parity_bit_error_flagged_not_corrupting(self, code, rng):
        data = rng.integers(0, 2, size=(3, 4))
        cw = code.encode(data)
        cw[1, 7] ^= 1  # overall parity bit
        res = code.decode(cw)
        assert np.array_equal(res.data, data)
        assert res.corrected == 1

    def test_double_error_detected(self, code, rng):
        data = rng.integers(0, 2, size=(4, 4))
        cw = code.encode(data)
        cw[0, 1] ^= 1
        cw[0, 5] ^= 1
        res = code.decode(cw)
        assert res.detected_uncorrectable == 1

    def test_even_parity_codewords(self, code, rng):
        cw = code.encode(rng.integers(0, 2, size=(30, 4)))
        assert not (cw.sum(axis=1) & 1).any()


class TestRepetition:
    def test_roundtrip(self, rng):
        code = RepetitionCode(3)
        data = rng.integers(0, 2, size=10)
        res = code.decode(code.encode(data))
        assert np.array_equal(res.data.ravel(), data)

    def test_majority_corrects_minority(self):
        code = RepetitionCode(3)
        res = code.decode(np.array([[1, 0, 1], [0, 0, 1]]))
        assert np.array_equal(res.data.ravel(), [1, 0])
        assert res.corrected == 2

    def test_even_factor_rejected(self):
        with pytest.raises(ValueError):
            RepetitionCode(2)

    def test_rate(self):
        assert np.isclose(RepetitionCode(5).rate, 0.2)


class TestCrc:
    def test_crc8_known_vector(self):
        # CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4
        data = np.frombuffer(b"123456789", dtype=np.uint8)
        assert CRC8_CCITT.compute_bytes(data) == 0xF4

    def test_crc16_ccitt_false_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1
        data = np.frombuffer(b"123456789", dtype=np.uint8)
        assert CRC16_CCITT.compute_bytes(data) == 0x29B1

    def test_append_check_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=64)
        framed = CRC16_CCITT.append(bits)
        assert CRC16_CCITT.check(framed)

    def test_detects_single_flip(self, rng):
        bits = rng.integers(0, 2, size=64)
        framed = CRC16_CCITT.append(bits)
        for pos in range(framed.size):
            bad = framed.copy()
            bad[pos] ^= 1
            assert not CRC16_CCITT.check(bad)

    def test_bit_length_validation(self):
        with pytest.raises(ValueError):
            CRC8_CCITT.compute_bits(np.zeros(7, dtype=np.int8))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Crc(12, 0x80F)


class TestInterleavers:
    def test_block_roundtrip(self, rng):
        il = BlockInterleaver(4, 8)
        bits = rng.integers(0, 2, size=64)
        assert np.array_equal(il.deinterleave(il.interleave(bits)), bits)

    def test_block_spreads_bursts(self):
        il = BlockInterleaver(4, 8)
        bits = np.zeros(32, dtype=np.int8)
        inter = il.interleave(bits)
        inter[:4] = 1  # a burst of 4 on the channel
        out = il.deinterleave(inter)
        ones = np.flatnonzero(out)
        assert np.all(np.diff(ones) >= 4)  # burst broken apart

    def test_block_is_permutation(self, rng):
        il = BlockInterleaver(3, 5)
        x = np.arange(15)
        assert sorted(il.interleave(x).tolist()) == list(range(15))

    def test_random_roundtrip(self, rng):
        il = RandomInterleaver(32, rng=0)
        bits = rng.integers(0, 2, size=96)
        assert np.array_equal(il.deinterleave(il.interleave(bits)), bits)

    def test_random_deterministic_in_seed(self, rng):
        bits = rng.integers(0, 2, size=32)
        a = RandomInterleaver(32, rng=5).interleave(bits)
        b = RandomInterleaver(32, rng=5).interleave(bits)
        assert np.array_equal(a, b)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            BlockInterleaver(4, 4).interleave(np.zeros(10, dtype=np.int8))
