"""Failure injection and degenerate-input robustness across modules."""

import numpy as np
import pytest

from repro.autoencoder import DemapperANN
from repro.channels import AWGNChannel
from repro.extraction import (
    HybridDemapper,
    extract_centroids,
    sample_decision_regions,
)
from repro.modulation import MaxLogDemapper, qam_constellation


class TestDegenerateDemappers:
    def test_constant_output_demapper_single_region(self):
        """A demapper stuck on one symbol yields one giant region; every
        estimator must degrade gracefully (fallback fills the rest)."""
        def stuck(pts):
            return np.tile([0.9, 0.1, 0.9, 0.1], (len(pts), 1))

        grid = sample_decision_regions(stuck, extent=1.5, resolution=64)
        assert grid.present_labels.size == 1
        for method in ("vertex", "mass", "lsq"):
            cents = extract_centroids(grid, 16, method=method)
            assert cents.n_missing == 15
            filled = cents.fill_missing(qam_constellation(16).points)
            assert filled.as_constellation().order == 16

    def test_untrained_demapper_extraction_does_not_crash(self, rng):
        d = DemapperANN(4, rng=rng)
        grid = sample_decision_regions(d.bit_probability_fn(), extent=1.5, resolution=64)
        for method in ("vertex", "mass", "lsq"):
            cents = extract_centroids(grid, 16, method=method)
            filled = cents.fill_missing(qam_constellation(16).points)
            assert np.all(np.isfinite(filled.points.view(np.float64)))

    def test_striped_regions(self):
        """Pathological non-convex (striped) regions — estimators must
        return finite centroids even though no Voronoi diagram fits."""
        def stripes(pts):
            band = ((pts[:, 0] * 4).astype(np.int64) % 4).astype(np.int64)
            out = np.zeros((len(pts), 4))
            out[:, 0] = (band >> 1) & 1
            out[:, 1] = band & 1
            return out

        grid = sample_decision_regions(stripes, extent=1.5, resolution=96)
        for method in ("mass", "vertex", "lsq"):
            cents = extract_centroids(grid, 16, method=method)
            pts = cents.points[cents.found]
            assert np.all(np.isfinite(pts.view(np.float64)))


class TestNumericalEdges:
    def test_demapper_handles_extreme_inputs(self, trained_system_8db):
        x = np.array([[1e6, -1e6], [0.0, 0.0], [-1e-12, 1e-12]])
        logits = trained_system_8db.demapper.forward(x)
        assert np.all(np.isfinite(logits))
        probs = trained_system_8db.demapper.probabilities(x)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_maxlog_extreme_received(self):
        qam = qam_constellation(16)
        ml = MaxLogDemapper(qam)
        y = np.array([1e8 + 1e8j, 0j, -1e8 - 1e8j])
        llrs = ml.llrs(y, 0.01)
        assert np.all(np.isfinite(llrs))

    def test_hybrid_on_empty_batch(self, trained_system_8db, trained_constellation_8db):
        sigma2 = AWGNChannel(8.0, 4).sigma2
        hybrid = HybridDemapper.extract(trained_system_8db.demapper, sigma2,
                                        method="mass", fallback=trained_constellation_8db)
        out = hybrid.llrs(np.array([], dtype=complex))
        assert out.shape == (0, 4)

    def test_awgn_empty_batch(self, rng):
        ch = AWGNChannel(8.0, 4, rng=rng)
        assert ch(np.array([], dtype=complex)).size == 0

    def test_training_with_tiny_batches(self, rng):
        """batch_size=1 must not crash any layer (shape edge cases)."""
        from repro.autoencoder import AESystem, E2ETrainer, MapperANN, TrainingConfig

        mapper = MapperANN(16, rng=rng)
        demapper = DemapperANN(4, rng=rng)
        system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
        hist = E2ETrainer(system, TrainingConfig(steps=5, batch_size=1)).run(rng)
        assert np.isfinite(hist.final_loss)


class TestMonitorUnderFire:
    def test_monitor_survives_all_error_pilots(self):
        from repro.extraction import PilotBERMonitor

        m = PilotBERMonitor(0.05, window=1, cooldown=0)
        bad = np.ones((16, 4), dtype=np.int8)
        good = np.zeros((16, 4), dtype=np.int8)
        assert m.observe_pilots(bad, good)  # BER 1.0 handled fine

    def test_adaptive_receiver_on_hopeless_channel(self, trained_system_8db,
                                                   trained_constellation_8db):
        """SNR so low that retraining cannot fix the link: the loop must
        keep running (and keep retrying) without crashing."""
        from repro.autoencoder import AESystem, TrainingConfig
        from repro.extraction import PilotBERMonitor
        from repro.link import AdaptiveReceiver, AdaptiveReceiverConfig, FrameConfig

        system = AESystem(trained_system_8db.mapper,
                          trained_system_8db.demapper.copy(),
                          trained_system_8db.channel)
        sigma2 = AWGNChannel(-10.0, 4).sigma2
        receiver = AdaptiveReceiver(
            system, trained_constellation_8db, sigma2,
            PilotBERMonitor(0.05, window=1, cooldown=1),
            AdaptiveReceiverConfig(
                frame=FrameConfig(pilot_symbols=64, payload_symbols=64),
                retrain=TrainingConfig(steps=20, batch_size=64),
                extraction_resolution=48,
            ),
        )
        hopeless = AWGNChannel(-10.0, 4, rng=1)
        reports = receiver.run(hopeless, 6, rng=2)
        assert len(reports) == 6
        assert receiver.retrain_count >= 1  # it tried
        assert all(np.isfinite(r.payload_ber) for r in reports)


class TestSerializationRobustness:
    def test_state_dict_missing_key(self, rng):
        from repro.nn import Dense, Sequential

        a = Sequential(Dense(2, 2, rng=rng))
        state = a.state_dict()
        del state["param_0"]
        state["wrong_key"] = np.zeros((2, 2))
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_npz_roundtrip_preserves_quantized_behaviour(self, trained_system_8db, tmp_path):
        """Save -> load -> quantise must be bit-identical to quantising the
        original (deployment pipeline integrity)."""
        from repro.autoencoder import DemapperANN
        from repro.fpga import QuantizedDemapper
        from repro.nn import load_state_dict_npz, save_state_dict_npz

        path = tmp_path / "demapper.npz"
        save_state_dict_npz(trained_system_8db.demapper, path)
        clone = DemapperANN(4)
        load_state_dict_npz(clone, path)
        x = np.random.default_rng(3).normal(size=(500, 2))
        q_orig = QuantizedDemapper(trained_system_8db.demapper)
        q_clone = QuantizedDemapper(clone)
        assert np.array_equal(q_orig.integer_forward(x), q_clone.integer_forward(x))
