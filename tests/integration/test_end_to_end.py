"""Full-pipeline integration tests — the paper's three steps end to end."""

import numpy as np
import pytest

from repro.autoencoder import (
    AESystem,
    DemapperANN,
    E2ETrainer,
    MapperANN,
    ReceiverFinetuner,
    TrainingConfig,
)
from repro.channels import AWGNChannel, CompositeChannel, IQImbalanceChannel, PhaseOffsetChannel
from repro.extraction import HybridDemapper
from repro.fpga import QuantizedDemapper, build_soft_demapper_core
from repro.link import simulate_ber
from repro.modulation import Mapper, MaxLogDemapper, qam_constellation, random_indices
from repro.utils.complexmath import complex_to_real2
from repro.utils.stats import gray_qam_ber_approx


class TestPaperPipeline:
    """Steps 1-3 of the paper on the shared trained system."""

    def test_step1_e2e_training_reaches_conventional(self, trained_system_8db):
        ber = trained_system_8db.evaluate(np.random.default_rng(1), 200_000)["ber"]
        assert ber < 1.6 * gray_qam_ber_approx(8.0)

    def test_step3_extraction_preserves_ber(self, trained_system_8db,
                                            trained_constellation_8db):
        sigma2 = AWGNChannel(8.0, 4).sigma2
        hybrid = HybridDemapper.extract(
            trained_system_8db.demapper, sigma2, method="lsq",
            fallback=trained_constellation_8db,
        )
        res = simulate_ber(
            trained_constellation_8db, AWGNChannel(8.0, 4, rng=2),
            hybrid.demap_bits, 200_000, rng=3,
        )
        assert res.ber < 1.6 * gray_qam_ber_approx(8.0)

    def test_step2_retraining_for_iq_imbalance(self, trained_system_8db):
        """Adaptation works for impairments beyond the paper's phase offset."""
        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            trained_system_8db.channel,
        )
        const = system.mapper.constellation()
        rng = np.random.default_rng(4)
        impaired = CompositeChannel([
            IQImbalanceChannel(2.0, 0.3),  # strong gain+phase mismatch
            AWGNChannel(8.0, 4, rng=rng),
        ])
        system.channel = impaired
        before = system.evaluate(rng, 40_000)["ber"]
        ReceiverFinetuner(
            system, TrainingConfig(steps=600, batch_size=512), constellation=const
        ).run(impaired, rng)
        after = system.evaluate(rng, 80_000)["ber"]
        assert after < before * 0.5
        assert after < 0.05

    def test_full_hybrid_loop_with_quantized_hardware_model(
        self, trained_system_8db, trained_constellation_8db
    ):
        """Software ANN -> quantised datapath -> on-device extraction ->
        centroid soft demapping: the complete deployment story."""
        sigma2 = AWGNChannel(8.0, 4).sigma2
        quantized = QuantizedDemapper(trained_system_8db.demapper)

        from repro.extraction import extract_centroids, sample_decision_regions

        grid = sample_decision_regions(quantized.bit_probability_fn(),
                                       extent=1.5, resolution=192)
        cents = extract_centroids(grid, 16, method="lsq").fill_missing(
            trained_constellation_8db.points
        )
        hybrid = HybridDemapper(constellation=cents.as_constellation(), sigma2=sigma2)
        res = simulate_ber(
            trained_constellation_8db, AWGNChannel(8.0, 4, rng=5),
            hybrid.demap_bits, 150_000, rng=6,
        )
        assert res.ber < 2.0 * gray_qam_ber_approx(8.0)

    def test_hardware_core_throughput_covers_simulated_stream(self):
        """The modelled soft-demapper core sustains the symbol rates the
        link simulator produces (sanity tie between the two worlds)."""
        _, rep = build_soft_demapper_core()
        assert rep.throughput_per_s > 1e7


class TestSeedReproducibility:
    def test_training_bitwise_reproducible(self):
        def build():
            rng = np.random.default_rng(77)
            mapper = MapperANN(16, init="qam", rng=rng)
            demapper = DemapperANN(4, rng=rng)
            system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
            E2ETrainer(system, TrainingConfig(steps=150, batch_size=128)).run(rng)
            return system

        a, b = build(), build()
        x = np.random.default_rng(0).normal(size=(10, 2))
        assert np.array_equal(a.demapper.logits(x), b.demapper.logits(x))
        assert np.array_equal(a.mapper.table.data, b.mapper.table.data)

    def test_extraction_deterministic(self, trained_system_8db, trained_constellation_8db):
        sigma2 = AWGNChannel(8.0, 4).sigma2
        h1 = HybridDemapper.extract(trained_system_8db.demapper, sigma2,
                                    method="lsq", fallback=trained_constellation_8db)
        h2 = HybridDemapper.extract(trained_system_8db.demapper, sigma2,
                                    method="lsq", fallback=trained_constellation_8db)
        assert np.array_equal(h1.constellation.points, h2.constellation.points)


class TestCrossValidationConventional:
    def test_hybrid_on_true_qam_equals_conventional(self):
        """If the 'centroids' are the true QAM points, the hybrid demapper
        IS the conventional demapper — exact agreement required."""
        qam = qam_constellation(16)
        sigma2 = AWGNChannel(6.0, 4).sigma2
        hybrid = HybridDemapper(constellation=qam, sigma2=sigma2)
        conv = MaxLogDemapper(qam)
        rng = np.random.default_rng(8)
        y = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        assert np.array_equal(hybrid.demap_bits(y), conv.demap_bits(y, sigma2))
        assert np.allclose(hybrid.llrs(y), conv.llrs(y, sigma2))
