"""Numerical gradient checks — the correctness anchor of the NN framework."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Embedding,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    gradcheck_module,
    numerical_gradient,
)


@pytest.fixture
def x23(rng):
    return rng.normal(size=(4, 3))


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda v: float((v**2).sum()), x.copy())
        assert np.allclose(grad, 2 * x, atol=1e-6)

    def test_does_not_mutate(self):
        x = np.array([1.0, 2.0])
        x0 = x.copy()
        numerical_gradient(lambda v: float(v.sum()), x)
        assert np.array_equal(x, x0)


class TestLayerGradients:
    def test_dense(self, rng, x23):
        assert gradcheck_module(Dense(3, 5, rng=rng), x23)

    def test_dense_no_bias(self, rng, x23):
        assert gradcheck_module(Dense(3, 2, bias=False, rng=rng), x23)

    def test_relu(self, rng):
        # keep activations away from the kink at 0
        x = rng.normal(size=(4, 3)) + np.where(rng.random((4, 3)) > 0.5, 2.0, -2.0)
        assert gradcheck_module(ReLU(), x)

    def test_leaky_relu(self, rng):
        x = rng.normal(size=(4, 3)) + np.where(rng.random((4, 3)) > 0.5, 2.0, -2.0)
        assert gradcheck_module(LeakyReLU(0.2), x)

    def test_sigmoid(self, rng, x23):
        assert gradcheck_module(Sigmoid(), x23)

    def test_tanh(self, rng, x23):
        assert gradcheck_module(Tanh(), x23)

    def test_embedding_params(self, rng):
        emb = Embedding(6, 4, rng=rng)
        idx = rng.integers(0, 6, size=10)
        assert gradcheck_module(emb, idx, check_input_grad=False)

    def test_mlp_stack(self, rng):
        mlp = Sequential.mlp([3, 8, 8, 2], rng=rng)
        x = rng.normal(size=(5, 3))
        assert gradcheck_module(mlp, x)

    def test_mlp_with_sigmoid_output(self, rng):
        mlp = Sequential.mlp([2, 6, 3], output_activation=Sigmoid, rng=rng)
        x = rng.normal(size=(4, 2))
        assert gradcheck_module(mlp, x)

    def test_paper_demapper_topology(self, rng):
        mlp = Sequential.mlp([2, 16, 16, 16, 4], rng=rng)
        x = rng.normal(size=(3, 2))
        assert gradcheck_module(mlp, x)


class TestGradcheckCatchesBugs:
    def test_detects_wrong_gradient(self, rng):
        class BrokenDense(Dense):
            def backward(self, grad_out):
                good = super().backward(grad_out)
                self.weight.grad *= 1.5  # corrupt the parameter gradient
                return good

        layer = BrokenDense(3, 3, rng=rng)
        with pytest.raises(AssertionError):
            gradcheck_module(layer, rng.normal(size=(4, 3)))
