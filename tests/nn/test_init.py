"""Weight-initialiser statistics and fan arithmetic."""

import numpy as np
import pytest

from repro.nn import he_normal, he_uniform, normal_init, uniform_init, xavier_normal, xavier_uniform


SHAPE = (64, 128)  # fan_out=64, fan_in=128


class TestXavier:
    def test_uniform_bounds(self, rng):
        w = xavier_uniform(SHAPE, rng)
        a = np.sqrt(6.0 / (128 + 64))
        assert w.min() >= -a and w.max() <= a

    def test_uniform_variance(self, rng):
        w = xavier_uniform((256, 256), rng)
        expected_var = 2.0 / (256 + 256)
        assert np.isclose(w.var(), expected_var, rtol=0.1)

    def test_normal_std(self, rng):
        w = xavier_normal((256, 256), rng)
        assert np.isclose(w.std(), np.sqrt(2.0 / 512), rtol=0.1)

    def test_zero_mean(self, rng):
        w = xavier_normal(SHAPE, rng)
        assert abs(w.mean()) < 0.01


class TestHe:
    def test_uniform_bounds(self, rng):
        w = he_uniform(SHAPE, rng)
        a = np.sqrt(6.0 / 128)
        assert w.min() >= -a and w.max() <= a

    def test_normal_std(self, rng):
        w = he_normal((128, 256), rng)
        assert np.isclose(w.std(), np.sqrt(2.0 / 256), rtol=0.1)

    def test_relu_activation_variance_preserved(self, rng):
        """He init's purpose: Var(relu(Wx)) ~ Var(x)/1 through deep ReLU stacks."""
        x = rng.normal(size=(512, 256))
        for _ in range(4):
            w = he_normal((256, 256), rng)
            x = np.maximum(x @ w.T, 0.0)
        # variance neither explodes nor vanishes across 4 layers
        assert 0.1 < x.var() < 10.0


class TestPlain:
    def test_uniform_range(self, rng):
        w = uniform_init((100, 100), rng, low=-0.5, high=0.5)
        assert w.min() >= -0.5 and w.max() < 0.5

    def test_normal_std_param(self, rng):
        w = normal_init((200, 200), rng, std=0.3)
        assert np.isclose(w.std(), 0.3, rtol=0.1)


class TestValidation:
    def test_fan_init_needs_2d(self, rng):
        with pytest.raises(ValueError):
            xavier_uniform((5,), rng)
        with pytest.raises(ValueError):
            he_normal((5,), rng)

    def test_deterministic_per_seed(self):
        a = xavier_uniform(SHAPE, np.random.default_rng(1))
        b = xavier_uniform(SHAPE, np.random.default_rng(1))
        assert np.array_equal(a, b)
