"""Module tree utilities, LR schedulers, state-dict (de)serialisation."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    Dense,
    ExponentialLR,
    ReLU,
    SGD,
    Sequential,
    StepLR,
    load_state_dict_npz,
    save_state_dict_npz,
)
from repro.nn.module import Parameter


class TestParameter:
    def test_grad_zero_initialised(self):
        p = Parameter(np.ones((2, 3)))
        assert np.allclose(p.grad, 0.0)
        assert p.grad.shape == p.data.shape

    def test_zero_grad_in_place(self):
        p = Parameter(np.ones(4))
        g = p.grad
        p.grad[...] = 3.0
        p.zero_grad()
        assert p.grad is g
        assert np.allclose(p.grad, 0.0)

    def test_shape_and_size(self):
        p = Parameter(np.zeros((3, 4)))
        assert p.shape == (3, 4)
        assert p.size == 12


class TestModuleTree:
    def test_parameters_collected_in_order(self, rng):
        seq = Sequential(Dense(2, 3, rng=rng), ReLU(), Dense(3, 1, rng=rng))
        params = seq.parameters()
        assert len(params) == 4  # 2x (weight, bias)
        assert params[0].shape == (3, 2)

    def test_num_parameters(self, rng):
        seq = Sequential(Dense(2, 3, rng=rng))
        assert seq.num_parameters() == 2 * 3 + 3

    def test_zero_grad_recursive(self, rng):
        seq = Sequential(Dense(2, 2, rng=rng))
        for p in seq.parameters():
            p.grad[...] = 1.0
        seq.zero_grad()
        assert all(np.allclose(p.grad, 0) for p in seq.parameters())

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Dense(2, 2, rng=rng), ReLU())
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self, rng):
        a = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        b = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(5, 3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_state_dict_shape_checked(self, rng):
        a = Sequential(Dense(3, 4, rng=rng))
        b = Sequential(Dense(4, 3, rng=rng))
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_state_dict_count_checked(self, rng):
        a = Sequential(Dense(3, 4, rng=rng))
        b = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 1, rng=rng))
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())


class TestSchedulers:
    def make(self, lr=1.0):
        p = Parameter(np.zeros(1))
        return Adam([p], lr=lr)

    def test_constant(self):
        opt = self.make(0.5)
        sched = ConstantLR(opt)
        for _ in range(10):
            assert sched.step() == 0.5

    def test_step_lr(self):
        opt = self.make(1.0)
        sched = StepLR(opt, step_size=3, gamma=0.1)
        lrs = [sched.step() for _ in range(7)]
        assert np.isclose(lrs[1], 1.0)   # steps 1-2 at base
        assert np.isclose(lrs[2], 0.1)   # step 3 decayed
        assert np.isclose(lrs[5], 0.01)

    def test_exponential(self):
        opt = self.make(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        assert np.isclose(sched.step(), 0.5)
        assert np.isclose(sched.step(), 0.25)

    def test_cosine_endpoints(self):
        opt = self.make(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert np.isclose(lrs[-1], 0.0, atol=1e-12)

    def test_cosine_monotone_decreasing(self):
        opt = self.make(1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_after_t_max(self):
        opt = self.make(1.0)
        sched = CosineAnnealingLR(opt, t_max=5, eta_min=0.1)
        for _ in range(10):
            lr = sched.step()
        assert np.isclose(lr, 0.1)

    def test_applies_to_optimizer(self):
        opt = self.make(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert np.isclose(opt.lr, 0.5)

    def test_validation(self):
        opt = self.make()
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=0.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)


class TestNpzSerialization:
    def test_roundtrip_through_file(self, rng, tmp_path):
        a = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        path = tmp_path / "model.npz"
        save_state_dict_npz(a, path)
        b = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        load_state_dict_npz(b, path)
        x = rng.normal(size=(6, 3))
        assert np.allclose(a.forward(x), b.forward(x))
