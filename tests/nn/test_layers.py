"""Forward-pass behaviour of every layer."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    Embedding,
    Identity,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(3, 5, rng=rng)
        assert layer.forward(rng.normal(size=(7, 3))).shape == (7, 5)

    def test_linear_in_input(self, rng):
        layer = Dense(4, 2, bias=False, rng=rng)
        x = rng.normal(size=(3, 4))
        assert np.allclose(layer.forward(2 * x), 2 * layer.forward(x))

    def test_bias_applied(self, rng):
        layer = Dense(2, 2, rng=rng)
        layer.bias.data[:] = [1.0, -1.0]
        layer.weight.data[:] = 0.0
        out = layer.forward(np.zeros((1, 2)))
        assert np.allclose(out, [[1.0, -1.0]])

    def test_no_bias_option(self, rng):
        layer = Dense(2, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_shape_validation(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((5, 4)))

    def test_backward_before_forward_fails(self, rng):
        layer = Dense(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestActivations:
    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
        assert np.allclose(out, [[-1.0, 10.0]])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    def test_sigmoid_range_and_midpoint(self):
        out = Sigmoid().forward(np.array([[0.0, 100.0, -100.0]]))
        assert np.isclose(out[0, 0], 0.5)
        assert 0.0 <= out.min() and out.max() <= 1.0

    def test_sigmoid_no_overflow(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))

    def test_tanh_odd(self):
        x = np.array([[0.5, -0.5]])
        out = Tanh().forward(x)
        assert np.isclose(out[0, 0], -out[0, 1])

    def test_identity_passthrough(self, rng):
        x = rng.normal(size=(4, 3))
        assert np.allclose(Identity().forward(x), x)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        d = Dropout(0.5, rng=rng)
        d.training = False
        x = rng.normal(size=(8, 8))
        assert np.allclose(d.forward(x), x)

    def test_training_mode_zeroes_fraction(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = d.forward(x)
        zero_frac = np.mean(out == 0)
        assert 0.4 < zero_frac < 0.6

    def test_inverted_scaling_preserves_mean(self):
        d = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        assert abs(d.forward(x).mean() - 1.0) < 0.02

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(4, 3, rng=rng)
        out = emb.forward(np.array([0, 2, 2]))
        assert out.shape == (3, 3)
        assert np.allclose(out[1], out[2])

    def test_rejects_float_indices(self, rng):
        emb = Embedding(4, 2, rng=rng)
        with pytest.raises(TypeError):
            emb.forward(np.array([0.5]))

    def test_rejects_out_of_range(self, rng):
        emb = Embedding(4, 2, rng=rng)
        with pytest.raises(IndexError):
            emb.forward(np.array([4]))

    def test_backward_accumulates_per_row(self, rng):
        emb = Embedding(3, 2, rng=rng)
        emb.forward(np.array([1, 1]))
        emb.backward(np.ones((2, 2)))
        assert np.allclose(emb.table.grad[1], [2.0, 2.0])
        assert np.allclose(emb.table.grad[0], 0.0)

    def test_bincount_backward_matches_scatter_add(self, rng):
        # the fast bincount path must equal np.add.at exactly (sums of the
        # same float64 addends, grouped identically)
        emb = Embedding(16, 2, rng=rng)
        idx = rng.integers(0, 16, size=512)
        grad_out = rng.normal(size=(512, 2))
        emb.forward(idx)
        emb.backward(grad_out)
        ref = np.zeros((16, 2))
        np.add.at(ref, idx, grad_out)
        np.testing.assert_allclose(emb.table.grad, ref, rtol=1e-12, atol=1e-15)

    def test_backward_repeated_accumulates_across_calls(self, rng):
        emb = Embedding(4, 2, rng=rng)
        for _ in range(2):
            emb.forward(np.array([3, 3, 0]))
            emb.backward(np.ones((3, 2)))
        assert np.allclose(emb.table.grad[3], [4.0, 4.0])
        assert np.allclose(emb.table.grad[0], [2.0, 2.0])


class TestSequential:
    def test_composition(self, rng):
        seq = Sequential(Dense(2, 4, rng=rng), ReLU(), Dense(4, 3, rng=rng))
        assert seq.forward(rng.normal(size=(5, 2))).shape == (5, 3)

    def test_len_and_getitem(self, rng):
        seq = Sequential(Dense(2, 2, rng=rng), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential()

    def test_mlp_builder_topology(self, rng):
        mlp = Sequential.mlp([2, 16, 16, 16, 4], rng=rng)
        denses = [l for l in mlp.layers if isinstance(l, Dense)]
        relus = [l for l in mlp.layers if isinstance(l, ReLU)]
        assert len(denses) == 4
        assert len(relus) == 3  # no activation after the output layer

    def test_mlp_output_activation(self, rng):
        mlp = Sequential.mlp([2, 4, 2], output_activation=Sigmoid, rng=rng)
        out = mlp.forward(rng.normal(size=(3, 2)))
        assert np.all((out >= 0) & (out <= 1))

    def test_mlp_needs_two_widths(self):
        with pytest.raises(ValueError):
            Sequential.mlp([4])

    def test_parameter_count_paper_demapper(self, rng):
        # paper topology 2-16-16-16-4: (2*16+16)+(16*16+16)*2+(16*4+4) = 660
        mlp = Sequential.mlp([2, 16, 16, 16, 4], rng=rng)
        assert mlp.num_parameters() == 660


class TestInfer:
    """Inference path: same numbers as forward, never disturbs backward state."""

    LAYERS = [
        lambda rng: Dense(3, 5, rng=rng),
        lambda rng: ReLU(),
        lambda rng: LeakyReLU(0.1),
        lambda rng: Sigmoid(),
        lambda rng: Tanh(),
        lambda rng: Identity(),
        lambda rng: Dropout(0.5, rng=rng),
    ]

    @pytest.mark.parametrize("build", LAYERS)
    def test_infer_matches_eval_forward(self, build, rng):
        layer = build(rng).eval()
        x = rng.normal(size=(12, 3))
        assert np.array_equal(layer.infer(x), layer.forward(x))

    @pytest.mark.parametrize("build", LAYERS)
    def test_infer_out_filled_in_place(self, build, rng):
        layer = build(rng).eval()
        x = rng.normal(size=(12, 3))
        want = layer.forward(x)
        out = np.empty_like(want)
        got = layer.infer(x, out=out)
        assert got is out
        assert np.array_equal(out, want)

    # all but Dropout, whose forward redraws its mask stochastically
    @pytest.mark.parametrize("build", LAYERS[:-1])
    def test_infer_between_forward_and_backward_is_harmless(self, build, rng):
        # interleaved inference must not clobber the cached backward state
        layer = build(rng)
        x = rng.normal(size=(8, 3))
        y = layer.forward(x)
        ref = layer.backward(np.ones_like(y))
        y2 = layer.forward(x)
        layer.infer(rng.normal(size=(20, 3)))  # different batch size on purpose
        got = layer.backward(np.ones_like(y2))
        assert np.array_equal(got, ref)

    def test_dropout_infer_keeps_training_mask(self, rng):
        d = Dropout(0.5, rng=rng)
        x = rng.normal(size=(16, 3))
        d.forward(x)
        mask = d._mask
        d.infer(rng.normal(size=(9, 3)))
        assert d._mask is mask  # inference never redraws the training mask

    def test_embedding_infer_matches_forward(self, rng):
        emb = Embedding(10, 4, rng=rng)
        idx = rng.integers(0, 10, size=7)
        assert np.array_equal(emb.infer(idx), emb.forward(idx))
        out = np.empty((7, 4))
        assert np.array_equal(emb.infer(idx, out=out), emb.forward(idx))

    def test_embedding_infer_keeps_backward_state(self, rng):
        emb = Embedding(10, 4, rng=rng)
        idx = rng.integers(0, 10, size=6)
        emb.forward(idx)
        emb.infer(rng.integers(0, 10, size=13))
        emb.backward(np.ones((6, 4)))  # would raise on shape mismatch
        assert emb.table.grad.sum() == pytest.approx(24.0)

    def test_dropout_infer_is_identity_even_in_training_mode(self, rng):
        d = Dropout(0.9, rng=rng)
        assert d.training
        x = rng.normal(size=(30, 4))
        assert np.array_equal(d.infer(x), x)

    def test_sequential_infer_matches_forward(self, rng):
        mlp = Sequential.mlp([2, 16, 16, 4], output_activation=Sigmoid, rng=rng)
        x = rng.normal(size=(25, 2))
        want = mlp.forward(x)
        assert np.array_equal(mlp.infer(x), want)
        out = np.empty((25, 4))
        assert mlp.infer(x, out=out) is out
        assert np.array_equal(out, want)
