"""Optimizer behaviour: convergence on quadratics, update formulas."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, RMSprop
from repro.nn.module import Parameter


def quadratic_grad(p: Parameter, target: np.ndarray) -> None:
    p.grad[...] = 2.0 * (p.data - target)


@pytest.fixture
def param():
    return Parameter(np.array([4.0, -3.0]))


TARGET = np.array([1.0, 2.0])


def run_steps(opt, p, n=200):
    for _ in range(n):
        opt.zero_grad()
        quadratic_grad(p, TARGET)
        opt.step()
    return p.data


class TestSGD:
    def test_converges_on_quadratic(self, param):
        run_steps(SGD([param], lr=0.1), param)
        assert np.allclose(param.data, TARGET, atol=1e-4)

    def test_single_step_formula(self, param):
        opt = SGD([param], lr=0.5)
        quadratic_grad(param, TARGET)
        expected = param.data - 0.5 * param.grad
        opt.step()
        assert np.allclose(param.data, expected)

    def test_momentum_accelerates(self):
        p1 = Parameter(np.array([4.0, -3.0]))
        p2 = Parameter(np.array([4.0, -3.0]))
        run_steps(SGD([p1], lr=0.01), p1, n=50)
        run_steps(SGD([p2], lr=0.01, momentum=0.9), p2, n=50)
        assert np.linalg.norm(p2.data - TARGET) < np.linalg.norm(p1.data - TARGET)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()  # zero task gradient: only decay acts
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_requires_momentum(self, param):
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, nesterov=True)

    def test_requires_grad_false_skipped(self):
        p = Parameter(np.array([1.0]), requires_grad=False)
        opt = SGD([p], lr=0.1)
        p.grad[...] = 5.0
        opt.step()
        assert p.data[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self, param):
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self, param):
        run_steps(Adam([param], lr=0.1), param, n=400)
        assert np.allclose(param.data, TARGET, atol=1e-3)

    def test_first_step_is_lr_sized(self):
        # with bias correction, the first Adam step is ~lr * sign(grad)
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1)
        p.grad[...] = 3.0
        opt.step()
        assert np.isclose(p.data[0], 10.0 - 0.1, atol=1e-6)

    def test_scale_invariance_of_step_size(self):
        # Adam steps are invariant to gradient scaling (per-coordinate)
        p1 = Parameter(np.array([5.0]))
        p2 = Parameter(np.array([5.0]))
        o1, o2 = Adam([p1], lr=0.1), Adam([p2], lr=0.1)
        for _ in range(3):
            o1.zero_grad(); p1.grad[...] = 1.0; o1.step()
            o2.zero_grad(); p2.grad[...] = 100.0; o2.step()
        assert np.allclose(p1.data, p2.data, atol=1e-9)

    def test_invalid_betas(self, param):
        with pytest.raises(ValueError):
            Adam([param], betas=(1.0, 0.9))

    def test_invalid_eps(self, param):
        with pytest.raises(ValueError):
            Adam([param], eps=0.0)


class TestRMSprop:
    def test_converges_on_quadratic(self, param):
        run_steps(RMSprop([param], lr=0.02), param, n=500)
        assert np.allclose(param.data, TARGET, atol=1e-2)

    def test_momentum_variant_converges(self, param):
        run_steps(RMSprop([param], lr=0.01, momentum=0.5), param, n=500)
        assert np.allclose(param.data, TARGET, atol=1e-2)

    def test_invalid_alpha(self, param):
        with pytest.raises(ValueError):
            RMSprop([param], alpha=1.0)


class TestZeroGrad:
    def test_clears_all(self, param):
        opt = SGD([param], lr=0.1)
        param.grad[...] = 7.0
        opt.zero_grad()
        assert np.allclose(param.grad, 0.0)
