"""Loss values and gradients against closed forms / numerical checks."""

import numpy as np
import pytest

from repro.nn import BCEWithLogitsLoss, CrossEntropyLoss, MSELoss
from repro.nn.gradcheck import numerical_gradient


class TestBCEWithLogits:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[20.0, -20.0]])
        targets = np.array([[1.0, 0.0]])
        loss, _ = BCEWithLogitsLoss()(logits, targets)
        assert loss < 1e-6

    def test_chance_level(self):
        loss, _ = BCEWithLogitsLoss()(np.zeros((4, 3)), np.ones((4, 3)))
        assert np.isclose(loss, np.log(2.0))

    def test_gradient_matches_numerical(self, rng):
        z = rng.normal(size=(3, 4))
        t = rng.integers(0, 2, size=(3, 4)).astype(float)
        loss_fn = BCEWithLogitsLoss()
        _, grad = loss_fn(z, t)
        num = numerical_gradient(lambda v: loss_fn(v, t)[0], z.copy())
        assert np.allclose(grad, num, atol=1e-7)

    def test_no_overflow_for_extreme_logits(self):
        loss, grad = BCEWithLogitsLoss()(np.array([[1000.0, -1000.0]]), np.array([[0.0, 1.0]]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss()(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_from_probabilities_matches_logit_path(self, rng):
        z = rng.normal(size=(5, 3))
        t = rng.integers(0, 2, size=(5, 3)).astype(float)
        loss_logits, _ = BCEWithLogitsLoss()(z, t)
        probs = 1 / (1 + np.exp(-z))
        loss_probs = BCEWithLogitsLoss.from_probabilities(probs, t)
        assert np.isclose(loss_logits, loss_probs, rtol=1e-9)


class TestMSE:
    def test_zero_at_target(self, rng):
        x = rng.normal(size=(3, 3))
        loss, grad = MSELoss()(x, x.copy())
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_known_value(self):
        loss, _ = MSELoss()(np.array([[2.0]]), np.array([[0.0]]))
        assert np.isclose(loss, 4.0)

    def test_gradient_matches_numerical(self, rng):
        x = rng.normal(size=(4, 2))
        t = rng.normal(size=(4, 2))
        loss_fn = MSELoss()
        _, grad = loss_fn(x, t)
        num = numerical_gradient(lambda v: loss_fn(v, t)[0], x.copy())
        assert np.allclose(grad, num, atol=1e-7)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros(4))


class TestCrossEntropy:
    def test_uniform_logits(self):
        loss, _ = CrossEntropyLoss()(np.zeros((3, 4)), np.array([0, 1, 2]))
        assert np.isclose(loss, np.log(4.0))

    def test_gradient_matches_numerical(self, rng):
        z = rng.normal(size=(3, 5))
        t = rng.integers(0, 5, size=3)
        loss_fn = CrossEntropyLoss()
        _, grad = loss_fn(z, t)
        num = numerical_gradient(lambda v: loss_fn(v, t)[0], z.copy())
        assert np.allclose(grad, num, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self, rng):
        z = rng.normal(size=(4, 6))
        t = rng.integers(0, 6, size=4)
        _, grad = CrossEntropyLoss()(z, t)
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_integer_targets_required(self):
        with pytest.raises(TypeError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0.0, 1.0]))

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(3, 4))
        t = rng.integers(0, 4, size=3)
        loss1, _ = CrossEntropyLoss()(z, t)
        loss2, _ = CrossEntropyLoss()(z + 100.0, t)
        assert np.isclose(loss1, loss2)
