"""Batched multi-SNR sweep engine: CRN determinism, invariances, receivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.autoencoder import DemapperANN
from repro.backend import use_backend
from repro.channels import (
    CompositeFactory,
    PhaseOffsetFactory,
    RayleighFactory,
    sigma2_from_snr,
)
from repro.link import (
    AnnBitsReceiver,
    ExtractedCentroidFactory,
    HardBitsReceiver,
    PerPointReceiver,
    SoftBitsReceiver,
    simulate_ber,
    sweep_ber,
)
from repro.link.simulator import AWGNFactory
from repro.modulation import ExactLogMAPDemapper, MaxLogDemapper, qam_constellation


@pytest.fixture
def qam16():
    return qam_constellation(16)


SNRS = (2.0, 6.0, 10.0)


class TestDeterminism:
    def test_same_seed_same_counts(self, qam16):
        rx = HardBitsReceiver(qam16)
        a = sweep_ber(qam16, SNRS, rx, 30_000, rng=11, batch_size=8192)
        b = sweep_ber(qam16, SNRS, rx, 30_000, rng=11, batch_size=8192)
        c = sweep_ber(qam16, SNRS, rx, 30_000, rng=12, batch_size=8192)
        assert a == b
        assert a != c
        assert list(a) == list(SNRS)

    def test_worker_count_invariance(self, qam16):
        rx = HardBitsReceiver(qam16)
        kw = dict(rng=7, batch_size=8192)
        r1 = sweep_ber(qam16, SNRS, rx, 40_000, n_workers=1, **kw)
        r2 = sweep_ber(qam16, SNRS, rx, 40_000, n_workers=2, **kw)
        r3 = sweep_ber(qam16, SNRS, rx, 40_000, n_workers=3, **kw)
        assert r1 == r2 == r3
        assert all(r.bits == 40_000 * 4 for r in r1.values())

    def test_snr_batching_invariance(self, qam16):
        """Splitting the SNR axis across calls never changes per-point counts."""
        rx = HardBitsReceiver(qam16)
        kw = dict(rng=5, batch_size=8192)
        full = sweep_ber(qam16, SNRS, rx, 30_000, **kw)
        for snr in SNRS:
            single = sweep_ber(qam16, (snr,), rx, 30_000, **kw)
            assert single[snr] == full[snr]
        pair = sweep_ber(qam16, SNRS[:2], rx, 30_000, **kw)
        assert all(pair[s] == full[s] for s in SNRS[:2])

    def test_per_point_early_stop_is_worker_invariant(self, qam16):
        rx = HardBitsReceiver(qam16)
        kw = dict(rng=3, batch_size=4096, max_errors=120)
        r1 = sweep_ber(qam16, (0.0, 12.0), rx, 300_000, n_workers=1, **kw)
        r2 = sweep_ber(qam16, (0.0, 12.0), rx, 300_000, n_workers=2, **kw)
        assert r1 == r2
        # the noisy point stops early, the clean one keeps accumulating
        assert r1[0.0].bit_errors >= 120
        assert r1[0.0].symbols < r1[12.0].symbols

    def test_crn_draw_independent_of_snr_axis_with_early_stop(self, qam16):
        # early stop of one point must not perturb another point's counts
        rx = HardBitsReceiver(qam16)
        kw = dict(rng=3, batch_size=4096, max_errors=120)
        both = sweep_ber(qam16, (0.0, 12.0), rx, 300_000, **kw)
        alone = sweep_ber(qam16, (12.0,), rx, 300_000, **kw)
        assert both[12.0] == alone[12.0]

    def test_backend_tier_reaches_workers(self, qam16):
        rx = HardBitsReceiver(qam16)
        kw = dict(rng=13, batch_size=8192)
        with use_backend("numpy32"):
            r1 = sweep_ber(qam16, SNRS[:2], rx, 20_000, n_workers=1, **kw)
            r2 = sweep_ber(qam16, SNRS[:2], rx, 20_000, n_workers=2, **kw)
        assert r1 == r2


class TestPhysics:
    def test_ber_decreases_with_snr(self, qam16):
        res = sweep_ber(
            qam16, (0.0, 4.0, 8.0), HardBitsReceiver(qam16), 60_000, rng=1
        )
        bers = [res[s].ber for s in (0.0, 4.0, 8.0)]
        assert bers[0] > bers[1] > bers[2]

    def test_matches_single_snr_simulator_statistically(self, qam16):
        """CRN sweep and the chunked per-SNR engine estimate the same BER."""
        snr = 6.0
        sweep = sweep_ber(qam16, (snr,), HardBitsReceiver(qam16), 200_000, rng=2)
        ml = MaxLogDemapper(qam16)
        import functools

        chunked = simulate_ber(
            qam16, None,
            functools.partial(ml.demap_bits, sigma2=sigma2_from_snr(snr, 4)),
            200_000, rng=2, channel_factory=AWGNFactory(snr, 4),
        )
        assert sweep[snr].ber == pytest.approx(chunked.ber, rel=0.15)

    def test_pre_channel_phase_offset_degrades_uncompensated_rx(self, qam16):
        clean = sweep_ber(qam16, (8.0,), HardBitsReceiver(qam16), 40_000, rng=4)
        rotated = sweep_ber(
            qam16, (8.0,), HardBitsReceiver(qam16), 40_000, rng=4,
            pre_channel_factory=PhaseOffsetFactory(np.pi / 8),
        )
        assert rotated[8.0].ber > clean[8.0].ber * 2

    def test_pre_channel_factory_is_worker_invariant(self, qam16):
        fac = CompositeFactory(
            (RayleighFactory(block_size=256, coherent=True), PhaseOffsetFactory(0.05))
        )
        rx = HardBitsReceiver(qam16)
        kw = dict(rng=6, batch_size=8192, pre_channel_factory=fac)
        r1 = sweep_ber(qam16, SNRS[:2], rx, 30_000, n_workers=1, **kw)
        r2 = sweep_ber(qam16, SNRS[:2], rx, 30_000, n_workers=2, **kw)
        assert r1 == r2


class TestReceivers:
    def test_soft_receiver_matches_hard_for_maxlog(self, qam16):
        # thresholded max-log LLRs = nearest-point decision
        kw = dict(rng=9, batch_size=8192)
        hard = sweep_ber(qam16, SNRS, HardBitsReceiver(qam16), 20_000, **kw)
        soft = sweep_ber(qam16, SNRS, SoftBitsReceiver(MaxLogDemapper(qam16)), 20_000, **kw)
        assert hard == soft

    def test_soft_receiver_with_exact_logmap_runs(self, qam16):
        res = sweep_ber(
            qam16, (6.0,), SoftBitsReceiver(ExactLogMAPDemapper(qam16)), 20_000, rng=9
        )
        assert 0 < res[6.0].ber < 0.2

    def test_ann_receiver_shapes_and_invariance(self, qam16):
        ann = DemapperANN(4, rng=np.random.default_rng(0))
        rx = AnnBitsReceiver(ann)
        kw = dict(rng=8, batch_size=8192)
        r1 = sweep_ber(qam16, SNRS[:2], rx, 20_000, n_workers=1, **kw)
        r2 = sweep_ber(qam16, SNRS[:2], rx, 20_000, n_workers=2, **kw)
        assert r1 == r2

    def test_bad_receiver_shape_rejected(self, qam16):
        def bad(received, sigma2s):
            return np.zeros((received.shape[0], received.shape[1], 3), dtype=np.int8)

        with pytest.raises(ValueError, match="receiver returned shape"):
            sweep_ber(qam16, (6.0,), bad, 5_000, rng=1)


@dataclass(frozen=True)
class _HardPointReceiver:
    """Per-point hard receiver recording which point indices it served."""

    constellation: object
    point: int

    def __call__(self, received, sigma2):
        from repro.modulation import HardDemapper

        return HardDemapper(self.constellation).demap_bits(received)


class TestPerPointReceivers:
    def test_matches_shared_receiver_exactly(self, qam16):
        """Identical per-point receivers == the shared hard receiver."""
        factory = lambda snr, s2: _HardPointReceiver(qam16, -1)  # noqa: E731
        kw = dict(rng=21, batch_size=8192)
        per_point = sweep_ber(qam16, SNRS, None, 30_000, receiver_factory=factory, **kw)
        shared = sweep_ber(qam16, SNRS, HardBitsReceiver(qam16), 30_000, **kw)
        assert per_point == shared

    def test_rows_routed_to_their_point_receiver_under_early_stop(self, qam16):
        """Early stopping must not shift the row -> receiver mapping."""
        # distinct per-point receivers: point p's receiver demaps on a
        # constellation rotated by a per-point angle; if a pruned sweep row
        # were routed to the wrong receiver the counts would change
        from repro.modulation import Constellation

        angles = {snr: 0.03 * i for i, snr in enumerate((0.0, 12.0))}

        def factory(snr, s2):
            rot = Constellation(points=qam16.points * np.exp(1j * angles[snr]))
            return _HardPointReceiver(rot, int(snr))

        kw = dict(rng=3, batch_size=4096, max_errors=120, receiver_factory=factory)
        both = sweep_ber(qam16, (0.0, 12.0), None, 300_000, **kw)
        alone = sweep_ber(qam16, (12.0,), None, 300_000, rng=3, batch_size=4096,
                          max_errors=120,
                          receiver_factory=lambda snr, s2: factory(12.0, s2))
        assert both[12.0] == alone[12.0]

    def test_worker_invariance(self, qam16):
        factory = lambda snr, s2: _HardPointReceiver(qam16, -1)  # noqa: E731
        kw = dict(rng=8, batch_size=8192, receiver_factory=factory)
        r1 = sweep_ber(qam16, SNRS[:2], None, 30_000, n_workers=1, **kw)
        r2 = sweep_ber(qam16, SNRS[:2], None, 30_000, n_workers=2, **kw)
        assert r1 == r2

    def test_extracted_centroid_factory_tracks_conventional(self, qam16):
        """Per-point re-extraction on a trained ANN ~ the conventional curve."""
        from repro.experiments.cache import trained_ae_system

        system = trained_ae_system(8.0, seed=7, steps=800)
        const = system.mapper.constellation()
        factory = ExtractedCentroidFactory(
            system.demapper, fallback=const, resolution=128
        )
        snrs = (4.0, 8.0)
        kw = dict(rng=15, batch_size=16384)
        hybrid = sweep_ber(const, snrs, None, 60_000, receiver_factory=factory, **kw)
        conv = sweep_ber(const, snrs, HardBitsReceiver(const), 60_000, **kw)
        for snr in snrs:
            assert hybrid[snr].ber < conv[snr].ber * 1.5 + 2e-3
        assert hybrid[4.0].ber > hybrid[8.0].ber  # physics sanity

    def test_exclusive_receiver_arguments(self, qam16):
        rx = HardBitsReceiver(qam16)
        with pytest.raises(ValueError, match="exactly one"):
            sweep_ber(qam16, (6.0,), rx, 1000,
                      receiver_factory=lambda snr, s2: rx)
        with pytest.raises(ValueError, match="exactly one"):
            sweep_ber(qam16, (6.0,), None, 1000)

    def test_empty_per_point_receiver_rejected(self):
        with pytest.raises(ValueError, match="at least one receiver"):
            PerPointReceiver(())


class TestValidation:
    def test_empty_snr_axis_rejected(self, qam16):
        with pytest.raises(ValueError, match="at least one sweep point"):
            sweep_ber(qam16, (), HardBitsReceiver(qam16), 1000)

    def test_bad_sizes_rejected(self, qam16):
        rx = HardBitsReceiver(qam16)
        with pytest.raises(ValueError, match="n_symbols"):
            sweep_ber(qam16, (6.0,), rx, 0)
        with pytest.raises(ValueError, match="batch_size"):
            sweep_ber(qam16, (6.0,), rx, 1000, batch_size=0)
        with pytest.raises(ValueError, match="n_workers"):
            sweep_ber(qam16, (6.0,), rx, 1000, n_workers=0)
