"""OFDM substrate: roundtrips, diagonalisation, per-subcarrier demapping."""

import numpy as np
import pytest

from repro.channels.awgn import sigma2_from_snr
from repro.link.ofdm import (
    MultipathChannel,
    OFDMConfig,
    OFDMReceiver,
    ofdm_demodulate,
    ofdm_modulate,
    subcarrier_gains,
)
from repro.modulation import MaxLogDemapper, qam_constellation, random_indices


@pytest.fixture
def cfg():
    return OFDMConfig(n_subcarriers=64, cp_length=16)


class TestConfig:
    def test_geometry(self, cfg):
        assert cfg.frame_length == 80
        assert np.isclose(cfg.efficiency, 0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            OFDMConfig(n_subcarriers=48)
        with pytest.raises(ValueError):
            OFDMConfig(n_subcarriers=64, cp_length=64)


class TestModemRoundtrip:
    def test_roundtrip(self, cfg, rng):
        x = rng.normal(size=(5, 64)) + 1j * rng.normal(size=(5, 64))
        time = ofdm_modulate(x, cfg)
        assert time.size == 5 * 80
        assert np.allclose(ofdm_demodulate(time, cfg), x)

    def test_flat_input_accepted(self, cfg, rng):
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        assert np.allclose(ofdm_demodulate(ofdm_modulate(x, cfg), cfg).ravel(), x)

    def test_unitary_power(self, cfg, rng):
        x = rng.normal(size=(20, 64)) + 1j * rng.normal(size=(20, 64))
        time = ofdm_modulate(OFDMConfig(64, 0) and x, OFDMConfig(64, 0))
        assert np.isclose(np.mean(np.abs(time) ** 2), np.mean(np.abs(x) ** 2))

    def test_cp_is_cyclic(self, cfg, rng):
        x = rng.normal(size=(1, 64)) + 1j * rng.normal(size=(1, 64))
        time = ofdm_modulate(x, cfg)
        assert np.allclose(time[:16], time[64:80])

    def test_length_validation(self, cfg):
        with pytest.raises(ValueError):
            ofdm_modulate(np.zeros(63, complex), cfg)
        with pytest.raises(ValueError):
            ofdm_demodulate(np.zeros(79, complex), cfg)


class TestMultipathChannel:
    def test_single_tap_is_gain(self, rng):
        ch = MultipathChannel(np.array([0.5 + 0.5j]))
        x = rng.normal(size=100) + 1j * rng.normal(size=100)
        assert np.allclose(ch.forward(x), (0.5 + 0.5j) * x)

    def test_streaming_matches_block(self, rng):
        taps = MultipathChannel.exponential_profile(5, rng=1)
        x = rng.normal(size=200) + 1j * rng.normal(size=200)
        block = MultipathChannel(taps).forward(x)
        stream_ch = MultipathChannel(taps)
        stream = np.concatenate([stream_ch.forward(x[:77]), stream_ch.forward(x[77:])])
        assert np.allclose(block, stream)

    def test_reset_clears_memory(self, rng):
        taps = np.array([1.0, 0.9])
        ch = MultipathChannel(taps)
        x = rng.normal(size=50) + 1j * rng.normal(size=50)
        ch.forward(x)
        ch.reset()
        assert np.allclose(ch.forward(x), MultipathChannel(taps).forward(x))

    def test_exponential_profile_normalised(self):
        taps = MultipathChannel.exponential_profile(8, rng=0)
        assert np.isclose(np.linalg.norm(taps), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultipathChannel(np.array([]))
        with pytest.raises(ValueError):
            MultipathChannel(np.array([1.0]), sigma2=-1)
        with pytest.raises(ValueError):
            MultipathChannel.exponential_profile(0)


class TestDiagonalisation:
    def test_cp_diagonalises_exactly(self, cfg, rng):
        """With CP >= channel memory, Y_k = H_k X_k exactly (no noise)."""
        taps = MultipathChannel.exponential_profile(8, rng=2)
        h = subcarrier_gains(taps, cfg.n_subcarriers)
        x = rng.normal(size=(6, 64)) + 1j * rng.normal(size=(6, 64))
        rx = MultipathChannel(taps).forward(ofdm_modulate(x, cfg))
        y = ofdm_demodulate(rx, cfg)
        assert np.allclose(y, h[None, :] * x, atol=1e-10)

    def test_later_frames_isi_absorbed_by_cp(self, cfg, rng):
        # frame 3's demodulated symbols are unaffected by frames 0-2 content
        taps = MultipathChannel.exponential_profile(10, rng=3)
        x = rng.normal(size=(4, 64)) + 1j * rng.normal(size=(4, 64))
        x2 = x.copy()
        x2[:3] = rng.normal(size=(3, 64)) + 1j * rng.normal(size=(3, 64))
        y1 = ofdm_demodulate(MultipathChannel(taps).forward(ofdm_modulate(x, cfg)), cfg)
        y2 = ofdm_demodulate(MultipathChannel(taps).forward(ofdm_modulate(x2, cfg)), cfg)
        assert np.allclose(y1[3], y2[3], atol=1e-10)

    def test_insufficient_cp_breaks_diagonalisation(self, rng):
        cfg_short = OFDMConfig(n_subcarriers=64, cp_length=2)
        taps = MultipathChannel.exponential_profile(10, rng=4)
        h = subcarrier_gains(taps, 64)
        x = rng.normal(size=(4, 64)) + 1j * rng.normal(size=(4, 64))
        rx = MultipathChannel(taps).forward(ofdm_modulate(x, cfg_short))
        y = ofdm_demodulate(rx, cfg_short)
        assert not np.allclose(y, h[None, :] * x, atol=1e-6)

    def test_channel_longer_than_fft_rejected(self):
        with pytest.raises(ValueError):
            subcarrier_gains(np.ones(128), 64)


class TestOFDMReceiver:
    def test_end_to_end_qam_over_multipath(self, cfg):
        rng = np.random.default_rng(9)
        qam = qam_constellation(16)
        snr_db = 14.0
        sigma2 = sigma2_from_snr(snr_db, 4)
        taps = MultipathChannel.exponential_profile(8, decay=0.7, rng=10)
        ch = MultipathChannel(taps, sigma2=sigma2, rng=11)

        # pilots: 4 known frames
        pilot_idx = random_indices(rng, 4 * 64, 16)
        pilot_frames = qam.points[pilot_idx].reshape(4, 64)
        rx_pilots = ofdm_demodulate(ch.forward(ofdm_modulate(pilot_frames, cfg)), cfg)

        ml = MaxLogDemapper(qam)
        receiver = OFDMReceiver(cfg, ml.llrs, sigma2)
        h_est = receiver.estimate(pilot_frames, rx_pilots)
        h_true = subcarrier_gains(taps, 64)
        assert np.allclose(h_est, h_true, atol=0.2)  # LS under noise

        # payload
        idx = random_indices(rng, 50 * 64, 16)
        tx_frames = qam.points[idx].reshape(50, 64)
        rx = ofdm_demodulate(ch.forward(ofdm_modulate(tx_frames, cfg)), cfg)
        bits = receiver.demap_bits(rx)
        ber = np.mean(bits != qam.bit_matrix[idx])
        # frequency-selective Rayleigh: some subcarriers are deeply faded, so
        # the BER is far above the flat-channel value but well below chance
        assert ber < 0.1

    def test_hybrid_demapper_per_subcarrier(self, cfg, trained_system_8db,
                                            trained_constellation_8db):
        """The paper's receiver, deployed per subcarrier: hybrid centroids +
        one-tap equalisation handle a frequency-selective channel."""
        from repro.channels import AWGNChannel
        from repro.extraction import HybridDemapper

        rng = np.random.default_rng(12)
        const = trained_constellation_8db
        sigma2 = sigma2_from_snr(14.0, 4)
        hybrid = HybridDemapper.extract(trained_system_8db.demapper,
                                        AWGNChannel(8.0, 4).sigma2,
                                        method="lsq", fallback=const)
        receiver = OFDMReceiver(cfg, lambda y, s2: hybrid.with_sigma2(s2).llrs(y), sigma2)

        taps = MultipathChannel.exponential_profile(6, decay=0.9, rng=13)
        ch = MultipathChannel(taps, sigma2=sigma2, rng=14)
        pilot_idx = random_indices(rng, 4 * 64, 16)
        pilot_frames = const.points[pilot_idx].reshape(4, 64)
        receiver.estimate(
            pilot_frames,
            ofdm_demodulate(ch.forward(ofdm_modulate(pilot_frames, cfg)), cfg),
        )
        idx = random_indices(rng, 40 * 64, 16)
        tx = const.points[idx].reshape(40, 64)
        rx = ofdm_demodulate(ch.forward(ofdm_modulate(tx, cfg)), cfg)
        ber = np.mean(receiver.demap_bits(rx) != const.bit_matrix[idx])
        assert ber < 0.1

    def test_estimate_required_before_demap(self, cfg):
        qam = qam_constellation(16)
        receiver = OFDMReceiver(cfg, MaxLogDemapper(qam).llrs, 0.01)
        with pytest.raises(RuntimeError):
            receiver.demap_bits(np.zeros((1, 64), complex))

    def test_validation(self, cfg):
        qam = qam_constellation(16)
        with pytest.raises(ValueError):
            OFDMReceiver(cfg, MaxLogDemapper(qam).llrs, 0.0)
        receiver = OFDMReceiver(cfg, MaxLogDemapper(qam).llrs, 0.01)
        with pytest.raises(ValueError):
            receiver.estimate(np.zeros((2, 64), complex), np.zeros((3, 64), complex))
        with pytest.raises(ValueError):
            receiver.estimate(np.zeros((2, 64), complex), np.zeros((2, 64), complex))