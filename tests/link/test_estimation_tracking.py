"""Classical estimation baseline and centroid tracking."""

import numpy as np
import pytest

from repro.channels import AWGNChannel, CompositeChannel, IQImbalanceChannel, PhaseOffsetChannel
from repro.extraction import CentroidTracker, HybridDemapper
from repro.link import (
    PhaseSyncReceiver,
    estimate_complex_gain,
    estimate_noise_sigma2,
    estimate_phase,
)
from repro.modulation import Mapper, qam_constellation, random_indices


class TestEstimators:
    def test_phase_estimate_noiseless(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        assert np.isclose(estimate_phase(x, x * np.exp(1j * 0.6)), 0.6)

    def test_phase_estimate_under_noise(self, rng):
        x = rng.normal(size=2048) + 1j * rng.normal(size=2048)
        y = x * np.exp(1j * 0.6) + 0.05 * (rng.normal(size=2048) + 1j * rng.normal(size=2048))
        assert abs(estimate_phase(x, y) - 0.6) < 0.01

    def test_gain_estimate(self, rng):
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        h = 0.8 * np.exp(1j * 1.1)
        assert np.isclose(estimate_complex_gain(x, h * x), h)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_phase(np.ones(2, complex), np.ones(3, complex))
        with pytest.raises(ValueError):
            estimate_complex_gain(np.zeros(4, complex), np.ones(4, complex))
        with pytest.raises(ValueError):
            estimate_noise_sigma2(np.ones(2, complex), np.ones(3, complex))
        with pytest.raises(ValueError):
            estimate_noise_sigma2(np.empty(0, complex), np.empty(0, complex))


class TestNoiseEstimator:
    def test_unbiased_on_awgn(self, rng):
        sigma2 = 0.04
        x = rng.normal(size=8192) + 1j * rng.normal(size=8192)
        n = np.sqrt(sigma2) * (rng.normal(size=8192) + 1j * rng.normal(size=8192))
        assert abs(estimate_noise_sigma2(x, x + n) - sigma2) < 0.1 * sigma2

    def test_gain_fit_makes_estimate_rotation_invariant(self, rng):
        """A rigid channel motion must not masquerade as a noise jump."""
        sigma2 = 0.02
        x = rng.normal(size=4096) + 1j * rng.normal(size=4096)
        n = np.sqrt(sigma2) * (rng.normal(size=4096) + 1j * rng.normal(size=4096))
        y = x + n
        rotated = np.exp(1j * 0.7) * y
        assert np.isclose(estimate_noise_sigma2(x, rotated), estimate_noise_sigma2(x, y))
        # without the fit the rotation energy lands in the "noise" estimate
        assert estimate_noise_sigma2(x, rotated, fit_gain=False) > 10 * sigma2

    def test_single_pilot_falls_back_to_direct_residual(self):
        x = np.array([1.0 + 0.0j])
        y = np.array([1.2 + 0.0j])
        # no gain DOF to remove: residual |y-x|^2 / 2
        assert np.isclose(estimate_noise_sigma2(x, y), 0.04 / 2)

    def test_noiseless_pilots_estimate_zero(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        assert estimate_noise_sigma2(x, 0.9 * np.exp(1j * 0.3) * x) < 1e-20


class TestPhaseSyncReceiver:
    def test_recovers_pure_phase_offset(self, rng):
        qam = qam_constellation(16)
        sigma2 = AWGNChannel(8.0, 4).sigma2
        rx = PhaseSyncReceiver(qam, sigma2)
        ch = CompositeChannel([PhaseOffsetChannel(np.pi / 4),
                               AWGNChannel(8.0, 4, rng=rng)])
        pilots = random_indices(rng, 256, 16)
        rx.update(qam.points[pilots], ch(qam.points[pilots]))

        idx = random_indices(rng, 100_000, 16)
        y = ch(qam.points[idx])
        ber = np.mean(rx.demap_bits(y) != qam.bit_matrix[idx])
        assert ber < 0.015  # at the 8 dB baseline

    def test_gain_mode_handles_amplitude(self, rng):
        from repro.channels.base import Channel

        class GainChannel(Channel):
            def forward(self, z):
                return 0.5 * np.exp(1j * 0.3) * np.asarray(z, complex)

        qam = qam_constellation(16)
        rx = PhaseSyncReceiver(qam, 0.01, mode="gain")
        ch = GainChannel()
        pilots = random_indices(rng, 128, 16)
        rx.update(qam.points[pilots], ch.forward(qam.points[pilots]))
        assert np.isclose(rx.estimate, 0.5 * np.exp(1j * 0.3))
        idx = random_indices(rng, 1000, 16)
        assert np.array_equal(rx.demap_bits(ch.forward(qam.points[idx])),
                              qam.bit_matrix[idx])

    def test_phase_mode_cannot_fix_iq_imbalance(self, rng):
        """The classical receiver's model limit — motivates ANN retraining."""
        qam = qam_constellation(16)
        sigma2 = AWGNChannel(10.0, 4).sigma2
        rx = PhaseSyncReceiver(qam, sigma2, mode="gain")
        ch = CompositeChannel([
            IQImbalanceChannel(3.0, 0.4),  # strong widely-linear warp
            AWGNChannel(10.0, 4, rng=rng),
        ])
        pilots = random_indices(rng, 512, 16)
        rx.update(qam.points[pilots], ch(qam.points[pilots]))
        idx = random_indices(rng, 50_000, 16)
        y = ch(qam.points[idx])
        ber = np.mean(rx.demap_bits(y) != qam.bit_matrix[idx])
        assert ber > 0.03  # an order of magnitude above the clean baseline

    def test_validation(self):
        qam = qam_constellation(16)
        with pytest.raises(ValueError):
            PhaseSyncReceiver(qam, 0.0)
        with pytest.raises(ValueError):
            PhaseSyncReceiver(qam, 0.1, mode="mmse")


class TestCentroidTracker:
    @pytest.fixture
    def tracked(self, trained_system_8db, trained_constellation_8db):
        sigma2 = AWGNChannel(8.0, 4).sigma2
        hybrid = HybridDemapper.extract(trained_system_8db.demapper, sigma2,
                                        method="lsq", fallback=trained_constellation_8db)
        return CentroidTracker(hybrid), trained_constellation_8db, sigma2

    def test_tracks_phase_rotation(self, tracked, rng):
        tracker, const, sigma2 = tracked
        ch = CompositeChannel([PhaseOffsetChannel(np.pi / 4),
                               AWGNChannel(8.0, 4, rng=rng)])
        pilots = random_indices(rng, 512, 16)
        rigid_ok = tracker.update(pilots, ch(const.points[pilots]))
        assert rigid_ok  # a rotation IS a rigid motion
        idx = random_indices(rng, 100_000, 16)
        y = ch(const.points[idx])
        ber = np.mean(tracker.demap_bits(y) != const.bit_matrix[idx])
        assert ber < 0.02
        assert abs(np.angle(tracker.cumulative_gain) - np.pi / 4) < 0.03

    def test_incremental_updates_compose(self, tracked, rng):
        tracker, const, _ = tracked
        for phi in (0.2, 0.2, 0.2):
            ch = CompositeChannel([
                PhaseOffsetChannel(np.angle(tracker.cumulative_gain) + phi),
                AWGNChannel(8.0, 4, rng=rng),
            ])
            pilots = random_indices(rng, 512, 16)
            tracker.update(pilots, ch(const.points[pilots]))
        assert tracker.updates == 3

    def test_flags_nonrigid_warp(self, tracked, rng):
        tracker, const, _ = tracked
        ch = CompositeChannel([
            IQImbalanceChannel(4.0, 0.5),
            AWGNChannel(14.0, 4, rng=rng),  # low noise: residual is all warp
        ])
        pilots = random_indices(rng, 1024, 16)
        rigid_ok = tracker.update(pilots, ch(const.points[pilots]))
        assert not rigid_ok  # escalate to retraining

    def test_live_sigma2_override_rescales_noise_floor(self, tracked, rng):
        """An SNR drop must not read as constellation warp when the caller
        supplies its live σ² estimate (the serving control plane does)."""
        tracker, const, _ = tracked
        noisy = AWGNChannel(0.0, 4, rng=rng)  # way below the stored 8 dB σ²
        pilots = random_indices(rng, 512, 16)
        received = noisy(const.points[pilots])
        assert not tracker.update(pilots, received)  # stale floor: "warp"
        live = AWGNChannel(0.0, 4).sigma2
        assert tracker.update(pilots, received, sigma2=live)  # honest noise
        with pytest.raises(ValueError):
            tracker.update(pilots, received, sigma2=0.0)

    def test_validation(self, tracked, rng):
        tracker, const, _ = tracked
        with pytest.raises(TypeError):
            tracker.update(np.array([0.5]), np.ones(1, complex))
        with pytest.raises(ValueError):
            CentroidTracker(tracker.current, residual_threshold=0.0)
