"""Link simulator, frames, and the adaptive receiver loop."""

import numpy as np
import pytest

from repro.channels import AWGNChannel, CompositeChannel, PhaseOffsetChannel, TimeVaryingPhaseChannel
from repro.extraction import PilotBERMonitor
from repro.link import (
    AdaptiveReceiver,
    AdaptiveReceiverConfig,
    Frame,
    FrameConfig,
    build_frame,
    simulate_ber,
    sweep_snr,
)
from repro.link.adaptive import FrameReport
from repro.modulation import MaxLogDemapper, qam_constellation
from repro.utils.stats import gray_qam_ber_approx


class TestSimulateBer:
    def test_matches_analytic_16qam(self):
        qam = qam_constellation(16)
        ch = AWGNChannel(4.0, 4, rng=0)
        ml = MaxLogDemapper(qam)
        res = simulate_ber(qam, ch, lambda y: ml.demap_bits(y, ch.sigma2), 200_000, rng=1)
        theory = gray_qam_ber_approx(4.0)
        assert abs(res.ber - theory) / theory < 0.1

    def test_wilson_interval_contains_estimate(self):
        qam = qam_constellation(16)
        ch = AWGNChannel(4.0, 4, rng=0)
        ml = MaxLogDemapper(qam)
        res = simulate_ber(qam, ch, lambda y: ml.demap_bits(y, ch.sigma2), 50_000, rng=1)
        assert res.ci_low <= res.ber <= res.ci_high

    def test_early_stop_on_max_errors(self):
        qam = qam_constellation(16)
        ch = AWGNChannel(0.0, 4, rng=0)
        ml = MaxLogDemapper(qam)
        res = simulate_ber(
            qam, ch, lambda y: ml.demap_bits(y, ch.sigma2), 10_000_000,
            rng=1, batch_size=10_000, max_errors=100,
        )
        assert res.symbols < 10_000_000
        assert res.bit_errors >= 100

    def test_zero_noise_zero_errors(self):
        qam = qam_constellation(16)
        ch = PhaseOffsetChannel(0.0)  # no noise at all
        ml = MaxLogDemapper(qam)
        res = simulate_ber(qam, ch, lambda y: ml.demap_bits(y, 0.01), 5_000, rng=1)
        assert res.bit_errors == 0
        assert res.ber == 0.0

    def test_deterministic_in_seed(self):
        qam = qam_constellation(16)
        ml = MaxLogDemapper(qam)
        r1 = simulate_ber(qam, AWGNChannel(4.0, 4, rng=7),
                          lambda y: ml.demap_bits(y, 0.05), 20_000, rng=3)
        r2 = simulate_ber(qam, AWGNChannel(4.0, 4, rng=7),
                          lambda y: ml.demap_bits(y, 0.05), 20_000, rng=3)
        assert r1.bit_errors == r2.bit_errors

    def test_demapper_shape_checked(self):
        qam = qam_constellation(16)
        with pytest.raises(ValueError):
            simulate_ber(qam, PhaseOffsetChannel(0.0), lambda y: np.zeros((3, 4)), 100, rng=0)

    def test_sweep_snr(self):
        qam = qam_constellation(16)
        ml = MaxLogDemapper(qam)

        def runner(snr):
            ch = AWGNChannel(snr, 4, rng=int(snr * 10))
            return simulate_ber(qam, ch, lambda y: ml.demap_bits(y, ch.sigma2), 30_000, rng=0)

        out = sweep_snr([0.0, 6.0], runner)
        assert out[0.0].ber > out[6.0].ber


class TestFrames:
    def test_geometry(self):
        cfg = FrameConfig(pilot_symbols=16, payload_symbols=48)
        assert cfg.total_symbols == 64
        assert np.isclose(cfg.pilot_overhead, 0.25)

    def test_build_frame_structure(self, rng):
        frame = build_frame(FrameConfig(8, 24), 16, rng)
        assert frame.indices.shape == (32,)
        assert frame.pilot_mask[:8].all()
        assert not frame.pilot_mask[8:].any()
        assert frame.pilot_indices.shape == (8,)
        assert frame.payload_indices.shape == (24,)

    def test_labels_in_range(self, rng):
        frame = build_frame(FrameConfig(32, 32), 16, rng)
        assert frame.indices.min() >= 0 and frame.indices.max() < 16

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameConfig(pilot_symbols=0)
        with pytest.raises(ValueError):
            build_frame(FrameConfig(), 1)


class TestAdaptiveReceiver:
    @pytest.fixture
    def receiver(self, trained_system_8db, trained_constellation_8db):
        from repro.autoencoder import AESystem
        from repro.autoencoder.training import TrainingConfig

        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            trained_system_8db.channel,
        )
        sigma2 = AWGNChannel(8.0, 4).sigma2
        monitor = PilotBERMonitor(0.08, window=2, cooldown=2)
        cfg = AdaptiveReceiverConfig(
            frame=FrameConfig(pilot_symbols=128, payload_symbols=512),
            retrain=TrainingConfig(steps=400, batch_size=512, lr=2e-3),
            extraction_resolution=128,
        )
        return AdaptiveReceiver(system, trained_constellation_8db, sigma2, monitor, cfg)

    def test_stable_channel_no_retrain(self, receiver):
        ch = AWGNChannel(8.0, 4, rng=5)
        reports = receiver.run(ch, 6, rng=6)
        assert receiver.retrain_count == 0
        assert all(not r.retrained for r in reports)
        assert np.mean([r.payload_ber for r in reports]) < 0.05

    def test_recovers_from_phase_jump(self, receiver):
        # phase jumps to pi/4 after 2 frames' worth of symbols
        jump_at = 2 * 640
        ch = CompositeChannel([
            TimeVaryingPhaseChannel(lambda t: np.where(t < jump_at, 0.0, np.pi / 4)),
            AWGNChannel(8.0, 4, rng=9),
        ])
        reports = receiver.run(ch, 14, rng=10)
        assert receiver.retrain_count >= 1
        # before the jump: clean; right after: broken; at the end: recovered
        assert reports[0].payload_ber < 0.05
        worst = max(r.payload_ber for r in reports[2:6])
        assert worst > 0.15
        assert np.mean([r.payload_ber for r in reports[-3:]]) < 0.08

    def test_reports_are_per_frame(self, receiver):
        ch = AWGNChannel(8.0, 4, rng=5)
        reports = receiver.run(ch, 3, rng=6)
        assert [r.frame_index for r in reports] == [0, 1, 2]
        assert all(isinstance(r, FrameReport) for r in reports)

    def test_validation(self, receiver):
        with pytest.raises(ValueError):
            receiver.run(AWGNChannel(8.0, 4), 0)
