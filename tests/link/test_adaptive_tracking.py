"""Three-tier adaptive receiver: track first, retrain only when needed."""

import numpy as np
import pytest

from repro.autoencoder import AESystem, TrainingConfig
from repro.channels import (
    AWGNChannel,
    CompositeChannel,
    IQImbalanceChannel,
    TimeVaryingPhaseChannel,
)
from repro.extraction import PilotBERMonitor
from repro.link import AdaptiveReceiver, AdaptiveReceiverConfig, FrameConfig


@pytest.fixture
def make_receiver(trained_system_8db, trained_constellation_8db):
    def factory(tracking: bool) -> AdaptiveReceiver:
        system = AESystem(
            trained_system_8db.mapper,
            trained_system_8db.demapper.copy(),
            trained_system_8db.channel,
        )
        return AdaptiveReceiver(
            system,
            trained_constellation_8db,
            AWGNChannel(8.0, 4).sigma2,
            PilotBERMonitor(0.08, window=2, cooldown=2),
            AdaptiveReceiverConfig(
                frame=FrameConfig(pilot_symbols=256, payload_symbols=512),
                retrain=TrainingConfig(steps=400, batch_size=512, lr=2e-3),
                extraction_resolution=128,
                tracking=tracking,
            ),
        )

    return factory


def phase_jump_channel(jump_at_symbols: int, seed: int):
    return CompositeChannel([
        TimeVaryingPhaseChannel(
            lambda t: np.where(t < jump_at_symbols, 0.0, np.pi / 4)
        ),
        AWGNChannel(8.0, 4, rng=np.random.default_rng(seed)),
    ])


class TestTrackingTier:
    def test_phase_jump_handled_without_retraining(self, make_receiver):
        receiver = make_receiver(tracking=True)
        ch = phase_jump_channel(2 * 768, seed=30)
        reports = receiver.run(ch, 12, rng=31)
        assert receiver.track_count >= 1
        assert receiver.retrain_count == 0  # rigid tier was enough
        assert any(r.tracked for r in reports)
        assert np.mean([r.payload_ber for r in reports[-3:]]) < 0.05

    def test_same_jump_without_tracking_retrains(self, make_receiver):
        receiver = make_receiver(tracking=False)
        ch = phase_jump_channel(2 * 768, seed=30)
        reports = receiver.run(ch, 12, rng=31)
        assert receiver.retrain_count >= 1
        assert all(not r.tracked for r in reports)
        assert np.mean([r.payload_ber for r in reports[-3:]]) < 0.05

    def test_nonrigid_impairment_escalates_to_retraining(self, make_receiver):
        receiver = make_receiver(tracking=True)
        jump = 2 * 768
        ch = CompositeChannel([
            TimeVaryingPhaseChannel(lambda t: np.where(t < jump, 0.0, np.pi / 8)),
            # IQ imbalance switched on with the phase jump is not expressible
            # as a one-tap gain; emulate by applying it throughout (the clean
            # start frames keep the monitor quiet anyway)
            IQImbalanceChannel(3.0, 0.35),
            AWGNChannel(8.0, 4, rng=np.random.default_rng(32)),
        ])
        receiver_reports = receiver.run(ch, 14, rng=33)
        # the warp forces at least one full retrain (tracker refuses it)
        assert receiver.retrain_count >= 1
        assert np.mean([r.payload_ber for r in receiver_reports[-3:]]) < 0.08

    def test_tracking_is_much_cheaper_marker(self, make_receiver):
        """Bookkeeping check: tracked frames don't count as retrains."""
        receiver = make_receiver(tracking=True)
        ch = phase_jump_channel(2 * 768, seed=34)
        reports = receiver.run(ch, 10, rng=35)
        assert all(not (r.tracked and r.retrained) for r in reports)
