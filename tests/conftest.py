"""Shared fixtures: deterministic RNGs and (expensively) trained systems.

Training-dependent tests share session-scoped fixtures so the suite trains
each configuration exactly once per run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoencoder import AESystem, DemapperANN, E2ETrainer, MapperANN, TrainingConfig
from repro.channels import AWGNChannel


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def trained_system_8db() -> AESystem:
    """AE jointly trained at 8 dB (Eb/N0) — shared, treat as read-only."""
    rng = np.random.default_rng(99)
    mapper = MapperANN(16, init="qam", rng=rng)
    demapper = DemapperANN(4, rng=rng)
    system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
    E2ETrainer(system, TrainingConfig(steps=1200, batch_size=512, lr=2e-3)).run(rng)
    return system


@pytest.fixture(scope="session")
def trained_constellation_8db(trained_system_8db: AESystem):
    """Frozen transmit constellation of the 8 dB system."""
    return trained_system_8db.mapper.constellation()
