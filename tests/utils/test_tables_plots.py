"""Tests for table formatting and ASCII plotting."""

import numpy as np
import pytest

from repro.utils.ascii_plot import ber_curve_plot, decision_region_plot, scatter_plot
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert "2.5" in lines[2]
        assert "-" in lines[3]  # None renders as '-'

    def test_title(self):
        out = format_table(["h"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_format(self):
        out = format_table(["x"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in out

    def test_alignment(self):
        out = format_table(["col", "other"], [["aaaa", 1], ["b", 22]])
        lines = out.splitlines()
        assert len(lines[2]) >= len("aaaa")


class TestBerCurvePlot:
    def test_renders_with_legend(self):
        snr = [0, 2, 4, 6]
        out = ber_curve_plot(snr, {"conv": [0.1, 0.05, 0.01, 0.001]})
        assert "legend" in out
        assert "conv" in out

    def test_multiple_series_marks(self):
        snr = [0, 4]
        out = ber_curve_plot(snr, {"a": [0.1, 0.01], "b": [0.2, 0.02]})
        assert "o=a" in out and "x=b" in out

    def test_zero_ber_clamped(self):
        out = ber_curve_plot([0, 2], {"s": [0.1, 0.0]})
        assert isinstance(out, str)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            ber_curve_plot([0], {"s": [0.1]})

    def test_series_shape_checked(self):
        with pytest.raises(ValueError):
            ber_curve_plot([0, 2], {"s": [0.1]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ber_curve_plot([0, 2], {})


class TestDecisionRegionPlot:
    def test_renders_grid(self):
        labels = np.zeros((32, 32), dtype=int)
        labels[16:, :] = 3
        out = decision_region_plot(labels, 1.0)
        assert "0" in out and "3" in out

    def test_centroid_overlay(self):
        labels = np.zeros((16, 16), dtype=int)
        out = decision_region_plot(labels, 1.0, centroids=np.array([0.0 + 0.0j]))
        assert "*" in out

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            decision_region_plot(np.zeros(5, dtype=int), 1.0)

    def test_orientation_top_is_positive_imag(self):
        labels = np.zeros((16, 16), dtype=int)
        labels[-1, :] = 5  # highest y row
        out = decision_region_plot(labels, 1.0)
        first_grid_line = out.splitlines()[1]
        assert "5" in first_grid_line


class TestScatterPlot:
    def test_renders_points(self):
        out = scatter_plot(np.array([0.5 + 0.5j, -0.5 - 0.5j]))
        assert out.count("*") == 2

    def test_labels_glyphs(self):
        out = scatter_plot(np.array([0.5 + 0.5j]), labels=np.array([7]))
        assert "7" in out


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 1, inclusive=False)

    def test_check_power_of_two(self):
        check_power_of_two("x", 16)
        with pytest.raises(ValueError):
            check_power_of_two("x", 12)
        with pytest.raises(ValueError):
            check_power_of_two("x", 0)

    def test_check_probability(self):
        check_probability("p", np.array([0.0, 0.5, 1.0]))
        with pytest.raises(ValueError):
            check_probability("p", 1.5)
        with pytest.raises(ValueError):
            check_probability("p", np.nan)
