"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import gray_qam_ber_approx, q_function, q_function_inv, wilson_interval


class TestQFunction:
    def test_known_values(self):
        assert np.isclose(q_function(0.0), 0.5)
        assert np.isclose(q_function(1.6448536), 0.05, atol=1e-6)

    def test_symmetry(self):
        x = np.linspace(-3, 3, 13)
        assert np.allclose(q_function(x) + q_function(-x), 1.0)

    def test_inverse_roundtrip(self):
        p = np.array([0.4, 0.1, 0.01, 1e-5])
        assert np.allclose(q_function(q_function_inv(p)), p, rtol=1e-9)

    def test_inverse_domain(self):
        with pytest.raises(ValueError):
            q_function_inv(0.0)
        with pytest.raises(ValueError):
            q_function_inv(1.0)


class TestQamBer:
    def test_paper_table1_baselines(self):
        """The paper's Table-1 baseline values pin down the SNR convention."""
        assert abs(gray_qam_ber_approx(-2.0) - 0.19) < 0.015
        assert abs(gray_qam_ber_approx(8.0) - 0.0103) < 0.0015

    def test_monotone_decreasing(self):
        snrs = np.arange(0, 14, 2.0)
        bers = gray_qam_ber_approx(snrs)
        assert np.all(np.diff(bers) < 0)

    def test_qpsk_matches_bpsk_formula(self):
        # Gray QPSK BER = Q(sqrt(2 Eb/N0))
        ebn0_db = 4.0
        expected = q_function(np.sqrt(2 * 10 ** (ebn0_db / 10)))
        assert np.isclose(gray_qam_ber_approx(ebn0_db, order=4), expected, rtol=1e-9)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            gray_qam_ber_approx(5.0, order=32)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            gray_qam_ber_approx(5.0, order=3)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(10, 1000)
        assert lo < 10 / 1000 < hi

    def test_zero_errors(self):
        lo, hi = wilson_interval(0, 1000)
        assert lo == 0.0
        assert 0 < hi < 0.01

    def test_all_errors(self):
        lo, hi = wilson_interval(1000, 1000)
        assert hi == 1.0
        assert 0.99 < lo < 1.0

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
