"""Tests for repro.utils.complexmath."""

import numpy as np
import pytest

from repro.utils.complexmath import (
    complex_to_real2,
    db_to_linear,
    linear_to_db,
    real2_to_complex,
    rotate,
    rotation_matrix,
)


class TestConversions:
    def test_roundtrip(self, rng):
        z = rng.normal(size=100) + 1j * rng.normal(size=100)
        assert np.allclose(real2_to_complex(complex_to_real2(z)), z)

    def test_shapes(self):
        z = np.zeros((3, 4), dtype=complex)
        assert complex_to_real2(z).shape == (3, 4, 2)

    def test_real2_requires_pair_axis(self):
        with pytest.raises(ValueError):
            real2_to_complex(np.zeros((5, 3)))

    def test_columns_are_re_im(self):
        out = complex_to_real2(np.array([1.0 + 2.0j]))
        assert out[0, 0] == 1.0 and out[0, 1] == 2.0

    def test_output_contiguous(self):
        out = complex_to_real2(np.array([1j, 2j]))
        assert out.flags.c_contiguous


class TestRotation:
    def test_rotation_matrix_orthogonal(self):
        r = rotation_matrix(0.7)
        assert np.allclose(r @ r.T, np.eye(2))
        assert np.isclose(np.linalg.det(r), 1.0)

    def test_rotate_complex_matches_real(self, rng):
        z = rng.normal(size=10) + 1j * rng.normal(size=10)
        phi = 0.3
        zc = rotate(z, phi)
        zr = rotate(complex_to_real2(z), phi)
        assert np.allclose(real2_to_complex(zr), zc)

    def test_quarter_turn(self):
        assert np.allclose(rotate(np.array([1.0 + 0j]), np.pi / 2), np.array([1j]), atol=1e-12)

    def test_rotation_preserves_norm(self, rng):
        z = rng.normal(size=50) + 1j * rng.normal(size=50)
        assert np.allclose(np.abs(rotate(z, 1.234)), np.abs(z))

    def test_inverse_rotation(self, rng):
        z = rng.normal(size=5) + 1j * rng.normal(size=5)
        assert np.allclose(rotate(rotate(z, 0.9), -0.9), z)


class TestDecibels:
    def test_db_to_linear_known(self):
        assert np.isclose(db_to_linear(10.0), 10.0)
        assert np.isclose(db_to_linear(0.0), 1.0)
        assert np.isclose(db_to_linear(-10.0), 0.1)

    def test_roundtrip(self):
        vals = np.array([0.01, 1.0, 5.5, 1234.0])
        assert np.allclose(db_to_linear(linear_to_db(vals)), vals)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-3.0)
