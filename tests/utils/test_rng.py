"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(3)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(8), as_generator(2).random(8))


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_are_independent(self):
        g1, g2 = spawn_generators(0, 2)
        assert not np.array_equal(g1.random(16), g2.random(16))

    def test_deterministic_across_calls(self):
        a = spawn_generators(42, 3)
        b = spawn_generators(42, 3)
        for x, y in zip(a, b):
            assert np.array_equal(x.random(4), y.random(4))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestRngFactory:
    def test_replays_identically(self):
        f1 = RngFactory(5)
        f2 = RngFactory(5)
        assert np.array_equal(f1.get("a").random(4), f2.get("x").random(4))

    def test_sequential_streams_differ(self):
        f = RngFactory(5)
        assert not np.array_equal(f.get().random(8), f.get().random(8))

    def test_issued_names_recorded(self):
        f = RngFactory(0)
        f.get("train")
        f.get("eval")
        assert f.issued == ("train", "eval")

    def test_get_many(self):
        f = RngFactory(0)
        gens = f.get_many(["a", "b", "c"])
        assert len(gens) == 3
        assert f.issued == ("a", "b", "c")
