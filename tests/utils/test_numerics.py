"""The single shared stable sigmoid and its three historical call sites."""

import numpy as np
import pytest

from repro.fpga.quantized_mlp import build_sigmoid_lut
from repro.modulation.demapper import llrs_to_probabilities
from repro.nn.layers import Sigmoid
from repro.utils.numerics import stable_sigmoid


class TestStableSigmoid:
    def test_matches_naive_formula_in_safe_range(self):
        x = np.linspace(-30, 30, 1001)
        np.testing.assert_allclose(stable_sigmoid(x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-15)

    def test_no_overflow_at_extremes(self):
        with np.errstate(over="raise"):
            y = stable_sigmoid(np.array([-1e4, -710.0, 0.0, 710.0, 1e4]))
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 0.0, 0.5, 1.0, 1.0], atol=1e-300)

    def test_symmetry(self):
        x = np.linspace(-50, 50, 101)
        np.testing.assert_allclose(stable_sigmoid(x) + stable_sigmoid(-x), 1.0, rtol=1e-14)

    def test_out_parameter(self):
        x = np.array([-2.0, 0.0, 2.0])
        out = np.empty_like(x)
        got = stable_sigmoid(x, out=out)
        assert got is out
        np.testing.assert_allclose(out, stable_sigmoid(x))

    def test_integer_input_coerced(self):
        y = stable_sigmoid(np.array([0, 1, -1]))
        assert y.dtype == np.float64

    def test_preserves_float32(self):
        y = stable_sigmoid(np.array([0.5, -0.5], dtype=np.float32))
        assert y.dtype == np.float32


class TestDeduplicatedCallSites:
    """All historical sigmoid implementations now route through numerics."""

    def test_sigmoid_layer_alias(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_array_equal(Sigmoid.stable_sigmoid(x), stable_sigmoid(x))

    def test_llrs_to_probabilities(self):
        llrs = np.array([[0.0, 5.0, -5.0], [800.0, -800.0, 0.1]])
        np.testing.assert_array_equal(llrs_to_probabilities(llrs), stable_sigmoid(llrs))

    def test_sigmoid_lut_reference(self):
        table, step = build_sigmoid_lut(entries=64, input_range=4.0)
        xs = -4.0 + step * np.arange(64)
        np.testing.assert_array_equal(table, stable_sigmoid(xs))


class TestSigmoidLutCache:
    def test_same_geometry_backed_by_one_cached_table(self):
        from repro.fpga.quantized_mlp import _cached_sigmoid_lut

        t1, s1 = _cached_sigmoid_lut(256, 8.0)
        t2, s2 = _cached_sigmoid_lut(256, 8.0)
        assert t1 is t2 and s1 == s2
        assert not t1.flags.writeable  # shared copy must stay immutable

    def test_public_table_is_a_writable_copy(self):
        # API contract: callers may post-process the returned table in place
        # without corrupting the shared cache
        t1, _ = build_sigmoid_lut()
        t1[0] = -1.0
        t2, _ = build_sigmoid_lut()
        assert t2[0] != -1.0
        assert t1 is not t2

    def test_distinct_geometries_distinct_tables(self):
        t1, _ = build_sigmoid_lut(entries=128)
        t2, _ = build_sigmoid_lut(entries=256)
        assert t1.shape != t2.shape

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            build_sigmoid_lut(entries=4)
        with pytest.raises(ValueError):
            build_sigmoid_lut(input_range=0)
