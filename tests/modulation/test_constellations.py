"""Constellation construction: energies, Gray labelling, geometry."""

import numpy as np
import pytest

from repro.modulation.constellations import (
    Constellation,
    _check_gray_property,
    psk_constellation,
    qam_constellation,
)


class TestQam16:
    def test_order_and_bits(self):
        c = qam_constellation(16)
        assert c.order == 16
        assert c.bits_per_symbol == 4

    def test_unit_average_energy(self):
        assert np.isclose(qam_constellation(16).average_energy, 1.0)

    def test_unnormalized_energy(self):
        # raw 16-QAM on the +-1,+-3 grid has average energy 10
        c = qam_constellation(16, normalize=False)
        assert np.isclose(c.average_energy, 10.0)

    def test_grid_positions(self):
        c = qam_constellation(16, normalize=False)
        assert np.allclose(sorted(set(np.round(c.points.real, 9))), [-3, -1, 1, 3])
        assert np.allclose(sorted(set(np.round(c.points.imag, 9))), [-3, -1, 1, 3])

    def test_all_points_distinct(self):
        c = qam_constellation(16)
        assert len(np.unique(np.round(c.points, 12))) == 16

    def test_gray_property(self):
        # nearest neighbours differ in exactly one bit
        assert _check_gray_property(qam_constellation(16))

    def test_min_distance(self):
        c = qam_constellation(16, normalize=False)
        assert np.isclose(c.min_distance, 2.0)

    def test_bit_matrix_rows(self):
        c = qam_constellation(16)
        assert c.bit_matrix.shape == (16, 4)
        assert np.array_equal(c.bit_matrix[10], [1, 0, 1, 0])

    @pytest.mark.parametrize("order", [4, 16, 64, 256])
    def test_square_orders(self, order):
        c = qam_constellation(order)
        assert c.order == order
        assert np.isclose(c.average_energy, 1.0)
        assert _check_gray_property(c)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            qam_constellation(32)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            qam_constellation(12)


class TestPsk:
    def test_unit_modulus(self):
        c = psk_constellation(8)
        assert np.allclose(np.abs(c.points), 1.0)

    def test_gray_property(self):
        assert _check_gray_property(psk_constellation(8))

    def test_qpsk_offset(self):
        c = psk_constellation(4, offset=np.pi / 4)
        assert np.allclose(np.abs(c.points.real), np.abs(c.points.imag))

    def test_distinct_angles(self):
        c = psk_constellation(16)
        assert len(np.unique(np.round(np.angle(c.points), 9))) == 16


class TestConstellationOps:
    def test_from_points_normalize(self):
        c = Constellation.from_points(np.array([3.0 + 0j, 0 + 4.0j, -3.0, -4.0j]), normalize=True)
        assert np.isclose(c.average_energy, 1.0)

    def test_rotation_preserves_energy_and_labels(self):
        c = qam_constellation(16)
        r = c.rotated(np.pi / 4)
        assert np.isclose(r.average_energy, 1.0)
        assert np.array_equal(r.bit_matrix, c.bit_matrix)
        assert np.allclose(r.points, c.points * np.exp(1j * np.pi / 4))

    def test_bits_for(self):
        c = qam_constellation(16)
        assert np.array_equal(c.bits_for(np.array([5])), [[0, 1, 0, 1]])

    def test_len(self):
        assert len(qam_constellation(16)) == 16

    def test_zero_constellation_rejected(self):
        with pytest.raises(ValueError):
            Constellation.from_points(np.zeros(4, dtype=complex), normalize=True)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            Constellation(points=np.ones(6, dtype=complex))

    def test_2d_points_rejected(self):
        with pytest.raises(ValueError):
            Constellation(points=np.ones((4, 2)))
