"""Labeling analysis: Gray penalties and the union bound."""

import numpy as np
import pytest

from repro.channels.awgn import sigma2_from_snr
from repro.modulation import psk_constellation, qam_constellation
from repro.modulation.labeling import gray_penalty, neighbour_bit_distances, union_bound_ber
from repro.utils.stats import gray_qam_ber_approx


class TestGrayPenalty:
    def test_gray_qam_is_perfect(self):
        assert gray_penalty(qam_constellation(16)) == 1.0
        assert gray_penalty(qam_constellation(64)) == 1.0

    def test_gray_psk_is_perfect(self):
        assert gray_penalty(psk_constellation(8)) == 1.0

    def test_natural_binary_labeling_is_worse(self):
        """Re-labelling 16-QAM with natural binary order breaks Gray."""
        from repro.modulation.constellations import Constellation
        from repro.modulation.gray import gray_encode

        gray = qam_constellation(16)
        # undo the Gray labelling: point for label i becomes point for
        # binary i (a valid but bad labeling)
        perm = np.zeros(16, dtype=int)
        for pos in range(4):
            for pos2 in range(4):
                label = (gray_encode(pos) << 2) | gray_encode(pos2)
                natural = (pos << 2) | pos2
                perm[natural] = label
        pts = gray.points[perm]
        natural_c = Constellation(points=pts)
        assert gray_penalty(natural_c) > 1.2

    def test_distances_all_one_for_gray(self):
        d = neighbour_bit_distances(qam_constellation(16))
        assert np.all(d == 1)
        # 16-QAM grid: 24 nearest-neighbour edges
        assert d.size == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            gray_penalty(qam_constellation(16), tolerance=0.9)


class TestUnionBound:
    @pytest.mark.parametrize("snr_db", [6.0, 8.0, 10.0, 12.0])
    def test_matches_gray_qam_closed_form(self, snr_db):
        c = qam_constellation(16)
        sigma2 = sigma2_from_snr(snr_db, 4)
        ub = union_bound_ber(c, sigma2)
        ref = float(gray_qam_ber_approx(snr_db))
        # the bound is slightly above the nearest-neighbour approximation
        assert ref * 0.95 < ub < ref * 1.6

    def test_bound_is_upper_bound_monte_carlo(self):
        from repro.channels import AWGNChannel
        from repro.modulation import MaxLogDemapper, Mapper, random_indices

        c = qam_constellation(16)
        snr_db = 8.0
        sigma2 = sigma2_from_snr(snr_db, 4)
        rng = np.random.default_rng(0)
        idx = random_indices(rng, 300_000, 16)
        ch = AWGNChannel(snr_db, 4, rng=rng)
        ml = MaxLogDemapper(c)
        ber = np.mean(ml.demap_bits(ch(Mapper(c)(idx)), sigma2) != c.bit_matrix[idx])
        assert ber <= union_bound_ber(c, sigma2) * 1.02

    def test_learned_constellation_bound_predicts_measured(self, trained_system_8db,
                                                           trained_constellation_8db):
        """The union bound evaluated on the LEARNED constellation predicts
        the AE's measured BER at 8 dB within the bound's slack."""
        sigma2 = sigma2_from_snr(8.0, 4)
        ub = union_bound_ber(trained_constellation_8db, sigma2)
        measured = trained_system_8db.evaluate(np.random.default_rng(1), 150_000)["ber"]
        assert measured <= ub * 1.05
        assert ub < 3 * measured  # and the bound is not vacuous

    def test_learned_constellation_stays_gray_like(self, trained_constellation_8db):
        """QAM-warm-started E2E training preserves a near-Gray labeling —
        one reason the AE matches conventional BER."""
        assert gray_penalty(trained_constellation_8db, tolerance=1.2) < 1.3

    def test_validation(self):
        with pytest.raises(ValueError):
            union_bound_ber(qam_constellation(16), 0.0)
