"""Bit packing and Gray-code tests."""

import numpy as np
import pytest

from repro.modulation.bits import (
    bits_to_indices,
    count_bit_errors,
    indices_to_bits,
    random_bits,
    random_indices,
)
from repro.modulation.gray import gray_decode, gray_encode


class TestBitPacking:
    def test_known_expansion(self):
        bits = indices_to_bits(np.array([0b1010]), 4)
        assert np.array_equal(bits[0], [1, 0, 1, 0])

    def test_roundtrip(self, rng):
        idx = rng.integers(0, 16, size=100)
        assert np.array_equal(bits_to_indices(indices_to_bits(idx, 4)), idx)

    def test_msb_first(self):
        assert np.array_equal(indices_to_bits(np.array([8]), 4)[0], [1, 0, 0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            indices_to_bits(np.array([16]), 4)
        with pytest.raises(ValueError):
            indices_to_bits(np.array([-1]), 4)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            indices_to_bits(np.array([1.0]), 4)

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            bits_to_indices(np.array([[0, 2]]))

    def test_random_bits_distribution(self, rng):
        bits = random_bits(rng, 10000)
        assert 0.45 < bits.mean() < 0.55
        assert set(np.unique(bits)) <= {0, 1}

    def test_random_indices_range(self, rng):
        idx = random_indices(rng, 1000, 16)
        assert idx.min() >= 0 and idx.max() < 16

    def test_count_bit_errors(self):
        a = np.array([[0, 1], [1, 1]])
        b = np.array([[0, 0], [1, 0]])
        assert count_bit_errors(a, b) == 2

    def test_count_shape_mismatch(self):
        with pytest.raises(ValueError):
            count_bit_errors(np.zeros(3), np.zeros(4))


class TestGray:
    def test_known_sequence(self):
        assert [gray_encode(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_adjacent_differ_one_bit(self):
        g = gray_encode(np.arange(256))
        diffs = g[:-1] ^ g[1:]
        popcount = np.array([bin(d).count("1") for d in diffs])
        assert np.all(popcount == 1)

    def test_decode_inverts_encode(self):
        n = np.arange(1024)
        assert np.array_equal(gray_decode(gray_encode(n)), n)

    def test_scalar_api(self):
        assert gray_encode(5) == 7
        assert gray_decode(7) == 5
        assert isinstance(gray_encode(5), int)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_encode(-1)
        with pytest.raises(ValueError):
            gray_decode(np.array([-2]))

    def test_bijection_on_range(self):
        g = gray_encode(np.arange(64))
        assert len(np.unique(g)) == 64
