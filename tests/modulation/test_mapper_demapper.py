"""Mapper and hard/soft demapper tests, including LLR correctness."""

import numpy as np
import pytest

from repro.channels.awgn import AWGNChannel, sigma2_from_snr
from repro.modulation import (
    ExactLogMAPDemapper,
    HardDemapper,
    Mapper,
    MaxLogDemapper,
    llrs_to_bits,
    llrs_to_probabilities,
    qam_constellation,
    random_indices,
)
from repro.utils.stats import gray_qam_ber_approx


@pytest.fixture(scope="module")
def qam16():
    return qam_constellation(16)


class TestMapper:
    def test_map_indices(self, qam16):
        m = Mapper(qam16)
        assert np.allclose(m.map_indices(np.array([3, 3])), qam16.points[[3, 3]])

    def test_map_bits_rows(self, qam16):
        m = Mapper(qam16)
        bits = qam16.bit_matrix[[7, 1]]
        assert np.allclose(m.map_bits(bits), qam16.points[[7, 1]])

    def test_map_flat_bitstream(self, qam16):
        m = Mapper(qam16)
        bits = qam16.bit_matrix[[7, 1]].ravel()
        assert np.allclose(m.map_bits(bits), qam16.points[[7, 1]])

    def test_flat_length_checked(self, qam16):
        with pytest.raises(ValueError):
            Mapper(qam16).map_bits(np.zeros(6, dtype=np.int8))

    def test_out_of_range_label(self, qam16):
        with pytest.raises(ValueError):
            Mapper(qam16).map_indices(np.array([16]))

    def test_float_labels_rejected(self, qam16):
        with pytest.raises(TypeError):
            Mapper(qam16).map_indices(np.array([1.0]))


class TestHardDemapper:
    def test_noiseless_roundtrip(self, qam16, rng):
        idx = random_indices(rng, 500, 16)
        hd = HardDemapper(qam16)
        assert np.array_equal(hd.demap_indices(qam16.points[idx]), idx)

    def test_bits_match_labels(self, qam16, rng):
        idx = random_indices(rng, 100, 16)
        hd = HardDemapper(qam16)
        assert np.array_equal(hd.demap_bits(qam16.points[idx]), qam16.bit_matrix[idx])

    def test_perturbed_within_half_min_distance(self, qam16, rng):
        idx = random_indices(rng, 200, 16)
        eps = 0.4 * qam16.min_distance  # < half min distance
        angles = rng.uniform(0, 2 * np.pi, size=200)
        received = qam16.points[idx] + eps * 0.99 * 0.5 * np.exp(1j * angles)
        hd = HardDemapper(qam16)
        assert np.array_equal(hd.demap_indices(received), idx)


class TestLlrHelpers:
    def test_llrs_to_bits_sign_convention(self):
        assert np.array_equal(llrs_to_bits(np.array([[1.0, -1.0, 0.0]])), [[1, 0, 0]])

    def test_llrs_to_probabilities(self):
        p = llrs_to_probabilities(np.array([0.0, 100.0, -100.0]))
        assert np.isclose(p[0], 0.5)
        assert p[1] > 0.999 and p[2] < 0.001


class TestMaxLog:
    def test_sign_matches_nearest_point(self, qam16, rng):
        ml = MaxLogDemapper(qam16)
        hd = HardDemapper(qam16)
        y = rng.normal(size=50) + 1j * rng.normal(size=50)
        assert np.array_equal(ml.demap_bits(y, 0.1), hd.demap_bits(y))

    def test_hard_decision_sigma_invariant(self, qam16, rng):
        ml = MaxLogDemapper(qam16)
        y = rng.normal(size=50) + 1j * rng.normal(size=50)
        assert np.array_equal(ml.demap_bits(y, 0.01), ml.demap_bits(y, 1.0))

    def test_llr_scales_inverse_sigma2(self, qam16):
        ml = MaxLogDemapper(qam16)
        y = np.array([0.3 + 0.2j])
        l1 = ml.llrs(y, 0.1)
        l2 = ml.llrs(y, 0.2)
        assert np.allclose(l1, 2 * l2)

    def test_bpsk_closed_form(self):
        # 2-point constellation (+-1 on the real axis, labels 0/1):
        # max-log llr(b) = ((y+1)^2 - (y-1)^2)/(2s2) = 2y/s2 ... sign: point for
        # bit 1 is c[1]=-1 -> llr = ((y-1)^2? verify numerically both demappers
        from repro.modulation.constellations import Constellation

        c = Constellation(points=np.array([1.0 + 0j, -1.0 + 0j]))
        ml = MaxLogDemapper(c)
        y = np.array([0.5 + 0j])
        s2 = 0.25
        # distances: to c0 (bit 0): (0.5-1)^2=0.25 ; c1 (bit 1): (0.5+1)^2=2.25
        expected = (0.25 - 2.25) / (2 * s2)
        assert np.isclose(ml.llrs(y, s2)[0, 0], expected)

    def test_matches_exact_at_high_snr(self, qam16, rng):
        ml = MaxLogDemapper(qam16)
        ex = ExactLogMAPDemapper(qam16)
        idx = random_indices(rng, 2000, 16)
        ch = AWGNChannel(14.0, 4, rng=rng)
        y = ch(qam16.points[idx])
        # at high SNR the max-log approximation is tight
        l_ml = ml.llrs(y, ch.sigma2)
        l_ex = ex.llrs(y, ch.sigma2)
        rel = np.abs(l_ml - l_ex) / (np.abs(l_ex) + 1e-9)
        assert np.median(rel) < 0.05

    def test_sigma2_validation(self, qam16):
        with pytest.raises(ValueError):
            MaxLogDemapper(qam16).llrs(np.array([0j]), 0.0)


class TestExactLogMAP:
    def test_hard_decisions_mostly_match_maxlog(self, qam16, rng):
        ex = ExactLogMAPDemapper(qam16)
        ml = MaxLogDemapper(qam16)
        ch = AWGNChannel(6.0, 4, rng=rng)
        idx = random_indices(rng, 5000, 16)
        y = ch(qam16.points[idx])
        agree = np.mean(ex.demap_bits(y, ch.sigma2) == ml.demap_bits(y, ch.sigma2))
        assert agree > 0.99

    def test_exact_never_worse_ber(self, qam16, rng):
        # exact log-MAP bitwise decisions are MAP-optimal: over a long run its
        # BER is <= max-log BER (within noise)
        ch = AWGNChannel(2.0, 4, rng=rng)
        idx = random_indices(rng, 200_000, 16)
        y = ch(qam16.points[idx])
        truth = qam16.bit_matrix[idx]
        ex = ExactLogMAPDemapper(qam16).demap_bits(y, ch.sigma2)
        ml = MaxLogDemapper(qam16).demap_bits(y, ch.sigma2)
        ber_ex = np.mean(ex != truth)
        ber_ml = np.mean(ml != truth)
        assert ber_ex <= ber_ml * 1.02

    def test_llr_symmetry_on_axis(self, qam16):
        # a symbol on the I axis mirrored across it flips no I-bits' LLR signs
        ex = ExactLogMAPDemapper(qam16)
        l_up = ex.llrs(np.array([0.5 + 0.3j]), 0.1)
        l_dn = ex.llrs(np.array([0.5 - 0.3j]), 0.1)
        # I-component bits (first half of the label) have identical LLRs
        assert np.allclose(l_up[0, :2], l_dn[0, :2], atol=1e-9)


class TestMonteCarloAgainstAnalytic:
    @pytest.mark.parametrize("snr_db", [0.0, 4.0, 8.0])
    def test_ber_matches_theory(self, qam16, snr_db):
        rng = np.random.default_rng(7)
        ch = AWGNChannel(snr_db, 4, rng=rng)
        ml = MaxLogDemapper(qam16)
        idx = random_indices(rng, 300_000, 16)
        y = ch(qam16.points[idx])
        ber = np.mean(ml.demap_bits(y, ch.sigma2) != qam16.bit_matrix[idx])
        theory = gray_qam_ber_approx(snr_db)
        assert abs(ber - theory) / theory < 0.12  # union bound approx tolerance

    def test_sigma2_from_snr_ebn0_vs_esn0(self):
        # Es/N0 = k * Eb/N0 for unit-energy constellations
        s_eb = sigma2_from_snr(6.0, 4, snr_type="ebn0")
        s_es = sigma2_from_snr(6.0 + 10 * np.log10(4), 4, snr_type="esn0")
        assert np.isclose(s_eb, s_es)
