"""Region adjacency graphs, labeling consistency, connectedness."""

import networkx as nx
import numpy as np
import pytest

from repro.extraction import sample_decision_regions
from repro.extraction.region_metrics import (
    labeling_consistency,
    region_adjacency_graph,
    region_connectedness,
)
from repro.modulation import qam_constellation


def qam_label_fn():
    pts = qam_constellation(16).points
    gen = np.column_stack([pts.real, pts.imag])

    def f(p):
        d = ((p[:, None, :] - gen[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d, axis=1)

    return f


@pytest.fixture(scope="module")
def qam_grid():
    return sample_decision_regions(None, extent=1.5, resolution=128,
                                   label_fn=qam_label_fn())


class TestAdjacencyGraph:
    def test_qam_grid_structure(self, qam_grid):
        g = region_adjacency_graph(qam_grid)
        assert g.number_of_nodes() == 16
        # the 4x4 grid graph has 24 edges
        assert g.number_of_edges() == 24
        assert nx.is_connected(g)

    def test_node_attributes(self, qam_grid):
        g = region_adjacency_graph(qam_grid)
        areas = [d["area"] for _, d in g.nodes(data=True)]
        assert np.isclose(sum(areas), 1.0)
        # corner regions are biggest inside a tight window? all comparable
        assert min(areas) > 0.01

    def test_centroid_attribute_near_generator(self, qam_grid):
        g = region_adjacency_graph(qam_grid)
        pts = qam_constellation(16).points
        for label, data in g.nodes(data=True):
            assert abs(data["centroid"] - pts[label]) < 0.35

    def test_edge_weights_positive(self, qam_grid):
        g = region_adjacency_graph(qam_grid)
        assert all(d["weight"] > 0 for _, _, d in g.edges(data=True))

    def test_degree_pattern_of_grid(self, qam_grid):
        g = region_adjacency_graph(qam_grid)
        degrees = sorted(dict(g.degree()).values())
        # 4 corners (deg 2), 8 edges (deg 3), 4 inner (deg 4)
        assert degrees == [2] * 4 + [3] * 8 + [4] * 4


class TestLabelingConsistency:
    def test_gray_qam_is_fully_consistent(self, qam_grid):
        assert labeling_consistency(qam_grid, 4) == 1.0

    def test_trained_demapper_consistency_high(self, trained_system_8db):
        grid = sample_decision_regions(
            trained_system_8db.demapper.bit_probability_fn(),
            extent=1.5, resolution=128,
        )
        assert labeling_consistency(grid, 4) > 0.9

    def test_shuffled_labels_inconsistent(self, qam_grid, rng):
        from repro.extraction.decision_regions import DecisionRegionGrid

        perm = rng.permutation(16)
        shuffled = DecisionRegionGrid(
            labels=perm[qam_grid.labels], extent=qam_grid.extent,
            xs=qam_grid.xs, ys=qam_grid.ys,
        )
        assert labeling_consistency(shuffled, 4) < 0.7

    def test_single_region_raises(self):
        grid = sample_decision_regions(None, extent=1.0, resolution=32,
                                       label_fn=lambda p: np.zeros(len(p), dtype=int))
        with pytest.raises(ValueError):
            labeling_consistency(grid, 4)


class TestConnectedness:
    def test_voronoi_regions_connected(self, qam_grid):
        assert region_connectedness(qam_grid) == 1.0

    def test_fragmented_region_detected(self):
        # label 1 = two disjoint disks; label 0 = the connected complement
        def fn(p):
            left = (p[:, 0] + 0.7) ** 2 + p[:, 1] ** 2 < 0.09
            right = (p[:, 0] - 0.7) ** 2 + p[:, 1] ** 2 < 0.09
            return (left | right).astype(int)

        grid = sample_decision_regions(None, extent=1.5, resolution=64, label_fn=fn)
        score = region_connectedness(grid)
        assert score == 0.5  # label 0 connected, label 1 fragmented

    def test_trained_demapper_regions_connected(self, trained_system_8db):
        grid = sample_decision_regions(
            trained_system_8db.demapper.bit_probability_fn(),
            extent=1.5, resolution=96,
        )
        assert region_connectedness(grid) > 0.85
