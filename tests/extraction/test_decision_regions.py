"""Decision-region sampling tests (against exact label functions)."""

import numpy as np
import pytest

from repro.extraction import sample_decision_regions


def nearest_label_fn(generators: np.ndarray):
    def f(pts: np.ndarray) -> np.ndarray:
        d = ((pts[:, None, :] - generators[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d, axis=1)

    return f


class TestSampling:
    def test_grid_geometry(self):
        grid = sample_decision_regions(None, extent=1.5, resolution=64,
                                       label_fn=lambda p: np.zeros(len(p), dtype=int))
        assert grid.resolution == 64
        assert grid.labels.shape == (64, 64)
        assert np.isclose(grid.xs[0], -1.5) and np.isclose(grid.xs[-1], 1.5)
        assert np.isclose(grid.cell_size, 3.0 / 63)

    def test_labels_match_function(self, rng):
        gen = rng.uniform(-1, 1, size=(4, 2))
        fn = nearest_label_fn(gen)
        grid = sample_decision_regions(None, extent=1.5, resolution=48, label_fn=fn)
        pts = grid.points()
        assert np.array_equal(grid.labels.ravel(), fn(pts))

    def test_label_orientation(self):
        # region label = 1 iff y > 0: row index grows with y
        fn = lambda p: (p[:, 1] > 0).astype(int)
        grid = sample_decision_regions(None, extent=1.0, resolution=16, label_fn=fn)
        assert grid.labels[0, 0] == 0     # bottom row: y = -1
        assert grid.labels[-1, 0] == 1    # top row: y = +1

    def test_batched_equals_unbatched(self, rng):
        gen = rng.uniform(-1, 1, size=(6, 2))
        fn = nearest_label_fn(gen)
        g1 = sample_decision_regions(None, extent=1.2, resolution=50, batch_rows=7, label_fn=fn)
        g2 = sample_decision_regions(None, extent=1.2, resolution=50, batch_rows=50, label_fn=fn)
        assert np.array_equal(g1.labels, g2.labels)

    def test_probability_fn_path(self, rng):
        # a 1-bit demapper: P(b=1) = sigmoid(x): threshold at x=0
        def probs(pts):
            return 1 / (1 + np.exp(-pts[:, :1]))

        grid = sample_decision_regions(probs, extent=1.0, resolution=32)
        assert grid.labels[:, 0].max() == 0   # left half -> bit 0
        assert grid.labels[:, -1].min() == 1  # right half -> bit 1

    def test_present_labels(self, rng):
        fn = lambda p: np.full(len(p), 7, dtype=int)
        grid = sample_decision_regions(None, extent=1.0, resolution=16, label_fn=fn)
        assert np.array_equal(grid.present_labels, [7])

    def test_region_fractions_sum_to_one(self, rng):
        gen = rng.uniform(-1, 1, size=(5, 2))
        grid = sample_decision_regions(None, extent=1.5, resolution=40,
                                       label_fn=nearest_label_fn(gen))
        frac = grid.region_fractions(5)
        assert np.isclose(frac.sum(), 1.0)

    def test_label_at_lookup(self, rng):
        gen = rng.uniform(-1, 1, size=(4, 2))
        fn = nearest_label_fn(gen)
        grid = sample_decision_regions(None, extent=1.5, resolution=128, label_fn=fn)
        pts = rng.uniform(-1.4, 1.4, size=(50, 2))
        # away from boundaries the nearest-sample lookup matches the function
        exact = fn(pts)
        looked = grid.label_at(pts)
        assert np.mean(looked == exact) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_decision_regions(None, extent=0.0, resolution=32,
                                    label_fn=lambda p: np.zeros(len(p), dtype=int))
        with pytest.raises(ValueError):
            sample_decision_regions(None, extent=1.0, resolution=2,
                                    label_fn=lambda p: np.zeros(len(p), dtype=int))

    def test_bad_probability_shape_rejected(self):
        with pytest.raises(ValueError):
            sample_decision_regions(lambda p: np.zeros(3), extent=1.0, resolution=16)
