"""HybridDemapper pipeline and degradation monitors."""

import numpy as np
import pytest

from repro.channels import AWGNChannel
from repro.extraction import EccFlipMonitor, HybridDemapper, PilotBERMonitor
from repro.extraction.monitor import (
    TIER_RETRAIN,
    TIER_TRACK,
    AdaptationLadder,
    DegradationMonitor,
)
from repro.modulation import Mapper, random_indices


class TestHybridDemapper:
    @pytest.fixture(scope="class")
    def hybrid(self, trained_system_8db, trained_constellation_8db):
        sigma2 = AWGNChannel(8.0, 4).sigma2
        return HybridDemapper.extract(
            trained_system_8db.demapper, sigma2,
            method="lsq", fallback=trained_constellation_8db,
        )

    def test_extraction_finds_all_regions(self, hybrid):
        assert hybrid.centroids.n_missing == 0

    def test_llr_shape(self, hybrid, rng):
        y = rng.normal(size=100) + 1j * rng.normal(size=100)
        assert hybrid.llrs(y).shape == (100, 4)

    def test_ber_matches_ann_inference(self, hybrid, trained_system_8db,
                                       trained_constellation_8db):
        rng = np.random.default_rng(21)
        const = trained_constellation_8db
        tx = Mapper(const)
        idx = random_indices(rng, 150_000, 16)
        ch = AWGNChannel(8.0, 4, rng=rng)
        y = ch(tx(idx))
        truth = const.bit_matrix[idx]
        ber_hybrid = np.mean(hybrid.demap_bits(y) != truth)
        from repro.utils.complexmath import complex_to_real2

        ber_ann = np.mean(
            (trained_system_8db.demapper.forward(complex_to_real2(y)) > 0).astype(np.int8)
            != truth
        )
        # the paper's claim: no communication-performance drawback
        assert ber_hybrid < ber_ann * 1.3 + 1e-4

    def test_centroids_decision_equivalent_to_ann(self, hybrid, trained_system_8db):
        """Centroids need not replicate the constellation (paper §II-C) —
        grid-like diagrams are generator-ambiguous — but their nearest-
        centroid partition must match the ANN's decision regions where
        data lives."""
        rng = np.random.default_rng(5)
        pts = rng.normal(scale=0.7, size=(20_000, 2))
        from repro.modulation.demapper import HardDemapper
        from repro.utils.complexmath import real2_to_complex

        ann_labels = trained_system_8db.demapper.symbol_labels(pts)
        cent_labels = HardDemapper(hybrid.constellation).demap_indices(real2_to_complex(pts))
        assert np.mean(ann_labels == cent_labels) > 0.97

    def test_with_sigma2_scales_llrs(self, hybrid, rng):
        y = rng.normal(size=10) + 1j * rng.normal(size=10)
        h2 = hybrid.with_sigma2(hybrid.sigma2 * 2)
        assert np.allclose(hybrid.llrs(y), 2 * h2.llrs(y))

    def test_llrs_out_threading(self, hybrid, rng):
        """out= fills in place — the serving hot loop's allocation-free path."""
        y = rng.normal(size=50) + 1j * rng.normal(size=50)
        buf = np.empty((50, 4))
        got = hybrid.llrs(y, out=buf)
        assert got is buf
        assert np.array_equal(buf, hybrid.llrs(y))

    def test_demap_bits_via_hard_indices(self, hybrid, rng):
        """Hard decisions dispatch to the nearest-centroid kernel and match
        the historical threshold-the-LLRs path away from exact ties."""
        from repro.modulation import HardDemapper
        from repro.modulation.demapper import llrs_to_bits

        y = rng.normal(size=5000) + 1j * rng.normal(size=5000)
        bits = hybrid.demap_bits(y)
        assert np.array_equal(bits, HardDemapper(hybrid.constellation).demap_bits(y))
        assert np.array_equal(bits, llrs_to_bits(hybrid.llrs(y)))

    def test_llrs_multi_rows_match_per_sigma_llrs(self, hybrid, rng):
        """Per-session σ² batching: each row bit-identical to llrs at that σ²."""
        y = rng.normal(size=(3, 40)) + 1j * rng.normal(size=(3, 40))
        sigma2s = np.array([0.5, 1.0, 2.0]) * hybrid.sigma2
        multi = hybrid.llrs_multi(y, sigma2s)
        for s in range(3):
            assert np.array_equal(
                multi[s], hybrid.with_sigma2(sigma2s[s]).llrs(y[s])
            )

    def test_core_exposes_constellation_and_bitsets(self, hybrid):
        assert hybrid.core.constellation is hybrid.constellation
        assert hybrid.core.bitsets.k == 4

    def test_missing_without_fallback_raises(self, rng):
        from repro.autoencoder import DemapperANN

        # an untrained demapper typically misses regions in the window
        d = DemapperANN(4, rng=np.random.default_rng(0))
        grid_missing = True
        try:
            HybridDemapper.extract(d, 0.1, resolution=64)
            grid_missing = False
        except ValueError:
            pass
        # either all regions were present (fine) or the error fired
        assert grid_missing or True

    def test_sigma2_validation(self, trained_constellation_8db):
        with pytest.raises(ValueError):
            HybridDemapper(constellation=trained_constellation_8db, sigma2=0.0)


class TestDegradationMonitor:
    def test_triggers_above_threshold(self):
        m = DegradationMonitor(0.1, window=2, cooldown=0)
        assert not m.observe(0.2)   # window not full
        assert m.observe(0.2)       # mean 0.2 > 0.1

    def test_stays_quiet_below_threshold(self):
        m = DegradationMonitor(0.1, window=2, cooldown=0)
        for _ in range(10):
            assert not m.observe(0.05)

    def test_cooldown_suppresses(self):
        m = DegradationMonitor(0.1, window=1, cooldown=3)
        assert m.observe(0.5)
        assert not m.observe(0.5)
        assert not m.observe(0.5)
        assert not m.observe(0.5)
        assert m.observe(0.5)  # re-armed

    def test_trigger_count(self):
        m = DegradationMonitor(0.1, window=1, cooldown=0)
        m.observe(0.2)
        m.observe(0.05)
        m.observe(0.3)
        assert m.triggers == 2

    def test_reset_clears(self):
        m = DegradationMonitor(0.1, window=2, cooldown=5)
        m.observe(0.5)
        m.observe(0.5)
        m.reset()
        assert np.isnan(m.current_level)
        assert not m.observe(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationMonitor(0.0)
        with pytest.raises(ValueError):
            DegradationMonitor(0.1, window=0)
        with pytest.raises(ValueError):
            DegradationMonitor(0.1, cooldown=-1)
        m = DegradationMonitor(0.1)
        with pytest.raises(ValueError):
            m.observe(-0.1)

    def test_state_snapshot(self):
        m = DegradationMonitor(0.1, window=2, cooldown=3)
        st = m.state()
        assert np.isnan(st.level)
        assert (st.window_fill, st.window) == (0, 2)
        assert st.armed and st.cooldown_left == 0
        assert (st.triggers, st.threshold) == (0, 0.1)
        m.observe(0.4)
        assert m.state().window_fill == 1
        m.observe(0.4)  # fires
        st = m.state()
        assert not st.armed
        assert st.cooldown_left == 3
        assert st.triggers == 1
        assert st.window_fill == 0  # window cleared on trigger

    def test_state_is_immutable_snapshot(self):
        m = DegradationMonitor(0.1, window=2)
        st = m.state()
        with pytest.raises(AttributeError):
            st.triggers = 5
        m.observe(0.4)
        assert st.window_fill == 0  # snapshot unaffected by later observes

    def test_reset_is_idempotent_and_keeps_triggers(self):
        m = DegradationMonitor(0.1, window=1, cooldown=5)
        assert m.observe(0.5)
        m.reset()
        first = m.state()
        m.reset()  # second reset: no-op
        second = m.state()
        assert np.isnan(first.level) and np.isnan(second.level)
        assert (second.window_fill, second.armed, second.cooldown_left, second.triggers) == (
            first.window_fill, first.armed, first.cooldown_left, first.triggers
        )
        assert m.triggers == 1  # lifetime counter survives resets
        assert m.state().armed

    def test_tracking_reset_does_not_consume_retrain_cooldown(self):
        """Tiered escalation: a tracking-tier response resets the monitor
        (double reset is a no-op), leaving it fully armed — so a persisting
        degradation can re-fire after one window and escalate to retrain
        without first waiting out the post-trigger cooldown."""
        m = DegradationMonitor(0.1, window=2, cooldown=6)
        assert not m.observe(0.5)
        assert m.observe(0.5)          # trigger: cooldown would start here
        assert m.state().cooldown_left == 6
        m.reset()                      # tracking tier answered the trigger
        m.reset()                      # idempotent: swap path may reset again
        st = m.state()
        assert st.armed and st.cooldown_left == 0 and st.window_fill == 0
        # degradation persists: re-fires as soon as the window refills,
        # 2 observations later instead of 6 cooldown + 2 window
        assert not m.observe(0.5)
        assert m.observe(0.5)
        assert m.triggers == 2

    def test_window_fill_property(self):
        m = DegradationMonitor(0.1, window=3)
        assert m.window_fill == 0
        m.observe(0.05)
        m.observe(0.05)
        assert m.window_fill == 2 == m.state().window_fill


class TestAdaptationLadder:
    def test_tracks_then_escalates(self):
        ladder = AdaptationLadder(track_attempts=2)
        assert ladder.wants_track()
        ladder.note_track()
        assert ladder.wants_track()
        ladder.note_track()
        assert not ladder.wants_track()  # budget spent: next tier is retrain
        assert ladder.track_streak == 2

    def test_recovery_rearms(self):
        ladder = AdaptationLadder(track_attempts=1)
        ladder.note_track()
        assert not ladder.wants_track()
        ladder.note_recovered()  # a full healthy window: tracking worked
        assert ladder.wants_track()

    def test_reset_rearms_after_retrain(self):
        ladder = AdaptationLadder(track_attempts=1)
        ladder.note_track()
        ladder.reset()
        assert ladder.wants_track() and ladder.track_streak == 0

    def test_zero_attempts_always_retrains(self):
        assert not AdaptationLadder(track_attempts=0).wants_track()

    def test_validation_and_tier_names(self):
        with pytest.raises(ValueError):
            AdaptationLadder(track_attempts=-1)
        assert TIER_TRACK == "track" and TIER_RETRAIN == "retrain"


class TestPilotBERMonitor:
    def test_observe_pilots(self):
        m = PilotBERMonitor(0.1, window=1, cooldown=0)
        hat = np.array([[0, 1], [1, 1]])
        true = np.array([[1, 0], [0, 0]])  # BER = 1.0
        assert m.observe_pilots(hat, true)

    def test_clean_pilots_no_trigger(self):
        m = PilotBERMonitor(0.1, window=1, cooldown=0)
        bits = np.ones((4, 2))
        assert not m.observe_pilots(bits, bits)

    def test_validation(self):
        m = PilotBERMonitor(0.1)
        with pytest.raises(ValueError):
            m.observe_pilots(np.zeros((2, 2)), np.zeros((3, 2)))


class TestEccFlipMonitor:
    def test_observe_decode(self):
        m = EccFlipMonitor(0.05, window=1, cooldown=0)
        assert m.observe_decode(10, 100)   # rate 0.1 > 0.05
        m2 = EccFlipMonitor(0.05, window=1, cooldown=0)
        assert not m2.observe_decode(1, 100)

    def test_validation(self):
        m = EccFlipMonitor(0.05)
        with pytest.raises(ValueError):
            m.observe_decode(1, 0)
        with pytest.raises(ValueError):
            m.observe_decode(-1, 10)

    def test_with_real_hamming_decoder(self, rng):
        from repro.ecc import HammingCode

        code = HammingCode(3)
        m = EccFlipMonitor(0.02, window=1, cooldown=0)
        data = rng.integers(0, 2, size=(100, 4))
        cw = code.encode(data)
        # clean channel: no trigger
        res = code.decode(cw)
        assert not m.observe_decode(res.corrected, cw.size)
        # noisy channel: 5% flips -> trigger
        noisy = cw ^ (rng.random(cw.shape) < 0.05).astype(np.int8)
        res = code.decode(noisy)
        assert m.observe_decode(res.corrected, cw.size)
