"""Voronoi geometry and centroid estimators on exact partitions."""

import numpy as np
import pytest

from repro.extraction import (
    boundary_midpoints,
    extract_centroids,
    region_vertices,
    sample_decision_regions,
    voronoi_inversion,
)


def nearest_label_fn(generators: np.ndarray):
    def f(pts: np.ndarray) -> np.ndarray:
        d = ((pts[:, None, :] - generators[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d, axis=1)

    return f


@pytest.fixture
def two_region_grid():
    # boundary: vertical line x = 0 (generators at +-0.5)
    gen = np.array([[-0.5, 0.0], [0.5, 0.0]])
    grid = sample_decision_regions(None, extent=1.0, resolution=64,
                                   label_fn=nearest_label_fn(gen))
    return gen, grid


class TestBoundaryMidpoints:
    def test_on_the_bisector(self, two_region_grid):
        _, grid = two_region_grid
        pts, pairs = boundary_midpoints(grid)
        assert pts.shape[0] > 0
        # all boundary samples hug x = 0 (within one cell)
        assert np.all(np.abs(pts[:, 0]) <= grid.cell_size)
        assert np.all(np.sort(pairs, axis=1) == [0, 1])

    def test_no_boundaries_single_region(self):
        grid = sample_decision_regions(None, extent=1.0, resolution=16,
                                       label_fn=lambda p: np.zeros(len(p), dtype=int))
        pts, pairs = boundary_midpoints(grid)
        assert pts.shape[0] == 0


class TestRegionVertices:
    def test_two_regions_get_border_vertices(self, two_region_grid):
        _, grid = two_region_grid
        verts = region_vertices(grid)
        assert set(verts) == {0, 1}
        # each half-window cell has 4 corners (2 window + 2 border crossings)
        for v in verts.values():
            assert v.shape[0] >= 4

    def test_four_quadrant_junction(self):
        # four quadrants meet at the origin: interior junction detected
        def fn(p):
            return (p[:, 0] > 0).astype(int) + 2 * (p[:, 1] > 0).astype(int)

        grid = sample_decision_regions(None, extent=1.0, resolution=64, label_fn=fn)
        verts = region_vertices(grid)
        for label in range(4):
            d = np.linalg.norm(verts[label], axis=1)
            assert d.min() < 3 * grid.cell_size  # a vertex near the origin

    def test_vertex_centroid_of_symmetric_cells(self, two_region_grid):
        gen, grid = two_region_grid
        cents = extract_centroids(grid, 2, method="vertex")
        # symmetric half-planes: vertex centroids sit at (+-0.5, 0)
        assert np.allclose(cents.points[0].real, -0.5, atol=0.1)
        assert np.allclose(cents.points[1].real, +0.5, atol=0.1)
        assert np.allclose(cents.points.imag, 0.0, atol=0.05)


class TestMassCentroids:
    def test_half_plane_mass_centres(self, two_region_grid):
        _, grid = two_region_grid
        cents = extract_centroids(grid, 2, method="mass")
        assert np.isclose(cents.points[0].real, -0.5, atol=0.05)
        assert np.isclose(cents.points[1].real, +0.5, atol=0.05)

    def test_missing_region_flagged(self, two_region_grid):
        _, grid = two_region_grid
        cents = extract_centroids(grid, 4, method="mass")
        assert cents.n_missing == 2
        assert not cents.found[2] and not cents.found[3]

    def test_fill_missing(self, two_region_grid):
        _, grid = two_region_grid
        cents = extract_centroids(grid, 4, method="mass")
        fb = np.array([9 + 9j, 9 + 9j, 1 + 1j, 2 + 2j])
        filled = cents.fill_missing(fb)
        assert filled.points[2] == 1 + 1j
        assert filled.points[3] == 2 + 2j
        # found entries keep their grid estimates
        assert filled.points[0] != 9 + 9j

    def test_as_constellation_requires_complete(self, two_region_grid):
        _, grid = two_region_grid
        cents = extract_centroids(grid, 4, method="mass")
        with pytest.raises(ValueError):
            cents.as_constellation()


class TestVoronoiInversion:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovers_random_generators(self, seed):
        rng = np.random.default_rng(seed)
        gen = rng.uniform(-1.2, 1.2, size=(12, 2))
        grid = sample_decision_regions(None, extent=2.0, resolution=192,
                                       label_fn=nearest_label_fn(gen))
        labels, rec = voronoi_inversion(grid)
        err = np.linalg.norm(rec - gen[labels], axis=1)
        assert err.max() < 2 * grid.cell_size

    def test_qam_grid_is_decision_equivalent(self):
        """Axis-separable (grid) Voronoi diagrams have a one-parameter
        generator ambiguity — level sets (a,b,-b,-a+c) with the same
        midpoints give identical boundaries.  The meaningful property is
        that the recovered generators induce the *same partition*."""
        from repro.modulation import qam_constellation

        pts = qam_constellation(16).points
        gen = np.column_stack([pts.real, pts.imag])
        grid = sample_decision_regions(None, extent=1.5, resolution=192,
                                       label_fn=nearest_label_fn(gen))
        labels, rec = voronoi_inversion(grid)
        relabeled = nearest_label_fn(rec)(grid.points())
        agreement = np.mean(relabeled == grid.labels.ravel())
        assert agreement > 0.98

    def test_rotation_equivariance(self):
        rng = np.random.default_rng(3)
        gen = rng.uniform(-1, 1, size=(8, 2))
        phi = 0.6
        rot = np.array([[np.cos(phi), -np.sin(phi)], [np.sin(phi), np.cos(phi)]])
        gen_rot = gen @ rot.T
        grid = sample_decision_regions(None, extent=2.0, resolution=160,
                                       label_fn=nearest_label_fn(gen_rot))
        labels, rec = voronoi_inversion(grid)
        err = np.linalg.norm(rec - gen_rot[labels], axis=1)
        assert err.max() < 2 * grid.cell_size

    def test_lsq_method_via_extract(self):
        rng = np.random.default_rng(4)
        gen = rng.uniform(-1, 1, size=(8, 2))
        grid = sample_decision_regions(None, extent=1.6, resolution=160,
                                       label_fn=nearest_label_fn(gen))
        cents = extract_centroids(grid, 8, method="lsq")
        rec = np.column_stack([cents.points.real, cents.points.imag])
        assert np.linalg.norm(rec - gen, axis=1).max() < 2 * grid.cell_size

    def test_single_region_raises(self):
        grid = sample_decision_regions(None, extent=1.0, resolution=16,
                                       label_fn=lambda p: np.zeros(len(p), dtype=int))
        with pytest.raises(ValueError):
            voronoi_inversion(grid)

    def test_lsq_single_region_falls_back_to_mass(self):
        grid = sample_decision_regions(None, extent=1.0, resolution=16,
                                       label_fn=lambda p: np.zeros(len(p), dtype=int))
        cents = extract_centroids(grid, 2, method="lsq")
        assert cents.found[0]
        assert np.isclose(cents.points[0], 0 + 0j, atol=0.1)

    def test_prior_shape_validated(self, two_region_grid):
        _, grid = two_region_grid
        with pytest.raises(ValueError):
            voronoi_inversion(grid, prior=np.zeros((3, 2)))

    def test_subsampling_cap(self):
        rng = np.random.default_rng(5)
        gen = rng.uniform(-1, 1, size=(6, 2))
        grid = sample_decision_regions(None, extent=1.5, resolution=256,
                                       label_fn=nearest_label_fn(gen))
        labels, rec = voronoi_inversion(grid, max_boundary_points=500)
        err = np.linalg.norm(rec - gen[labels], axis=1)
        assert err.max() < 4 * grid.cell_size  # coarser but still close


class TestExtractValidation:
    def test_unknown_method(self, two_region_grid):
        _, grid = two_region_grid
        with pytest.raises(ValueError):
            extract_centroids(grid, 2, method="kmeans")

    def test_labels_outside_order(self, two_region_grid):
        _, grid = two_region_grid
        with pytest.raises(ValueError):
            extract_centroids(grid, 1)  # grid contains label 1 >= order
