"""Experiment drivers at reduced scale: structure + paper-shape assertions."""

import numpy as np
import pytest

from repro.experiments import paper_values
from repro.experiments.cache import trained_ae_system
from repro.experiments.fig2_ber import Fig2Config, run as run_fig2
from repro.experiments.fig3_decision_regions import (
    Fig3Config,
    mean_rotation_angle,
    run as run_fig3,
)
from repro.experiments.table1_adaptation import Table1Config, run as run_table1
from repro.experiments.table2_fpga import Table2Config, run as run_table2

FAST_SEED = 4242
FAST_STEPS = 900


class TestPaperValues:
    def test_table1_keys(self):
        assert set(paper_values.TABLE1) == {-2.0, 8.0}
        for row in paper_values.TABLE1.values():
            assert set(row) == {"baseline", "ae_before", "centroid_before",
                                "ae_after", "centroid_after"}

    def test_fig2_reference_matches_analytic(self):
        assert np.isclose(paper_values.fig2_conventional_reference(8.0), 0.00925, rtol=0.01)

    def test_phase_offset_is_quarter_pi(self):
        assert np.isclose(paper_values.FIG3_PHASE_OFFSET, np.pi / 4)


class TestCache:
    def test_same_request_returns_same_object(self):
        a = trained_ae_system(8.0, seed=FAST_SEED, steps=200)
        b = trained_ae_system(8.0, seed=FAST_SEED, steps=200)
        assert a is b

    def test_copy_is_independent(self):
        a = trained_ae_system(8.0, seed=FAST_SEED, steps=200)
        c = trained_ae_system(8.0, seed=FAST_SEED, steps=200, copy=True)
        assert a is not c
        x = np.random.default_rng(0).normal(size=(5, 2))
        assert np.allclose(a.demapper.logits(x), c.demapper.logits(x))
        c.demapper.parameters()[0].data += 1.0
        assert not np.allclose(a.demapper.logits(x), c.demapper.logits(x))


class TestFig2Small:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = Fig2Config(
            snr_dbs=(2.0, 8.0), train_steps=FAST_STEPS, seed=FAST_SEED,
            max_symbols=120_000, max_errors=800, extraction_resolution=128,
        )
        return run_fig2(cfg)

    def test_all_series_present(self, result):
        assert set(result.series) == {"conventional", "ae", "centroid_vertex", "centroid_lsq"}

    def test_conventional_matches_analytic(self, result):
        for i, snr in enumerate(result.snr_dbs):
            measured = result.series["conventional"][i].ber
            assert abs(measured - result.analytic[i]) / result.analytic[i] < 0.25

    def test_ae_on_conventional_level(self, result):
        """Paper: 'performance of the AE ... is on the level of the
        conventional demapper'."""
        for i in range(len(result.snr_dbs)):
            conv = result.series["conventional"][i].ber
            ae = result.series["ae"][i].ber
            assert ae < conv * 1.5 + 1e-4

    def test_centroids_track_ae(self, result):
        for i in range(len(result.snr_dbs)):
            ae = result.series["ae"][i].ber
            lsq = result.series["centroid_lsq"][i].ber
            assert lsq < ae * 1.6 + 1e-3

    def test_monotone_in_snr(self, result):
        for name in result.series:
            bers = result.bers(name)
            assert bers[0] > bers[-1]

    def test_table_and_plot_render(self, result):
        assert "Fig. 2" in result.to_table()
        assert "legend" in result.to_plot()


class TestFig3Small:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = Fig3Config(
            snr_dbs=(8.0,), train_steps=FAST_STEPS, retrain_steps=700,
            seed=FAST_SEED, resolution=96,
        )
        return run_fig3(cfg)

    def test_rotation_detected(self, result):
        """Paper: 'the DRs are rotated by pi/4 after retraining'."""
        rot = result.rotations[8.0]
        assert abs(rot - np.pi / 4) < 0.12

    def test_snapshots_complete(self, result):
        before, after = result.snapshots[8.0]
        assert before.centroids.n_missing == 0
        assert before.grid.labels.shape == (96, 96)
        assert "*" in after.to_plot("t")

    def test_mean_rotation_angle_exact_on_synthetic(self):
        pts = np.exp(1j * np.linspace(0, 2 * np.pi, 8, endpoint=False))
        assert np.isclose(mean_rotation_angle(pts, pts * np.exp(1j * 0.5)), 0.5)

    def test_mean_rotation_validation(self):
        with pytest.raises(ValueError):
            mean_rotation_angle(np.ones(3, complex), np.ones(4, complex))


class TestTable1Small:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = Table1Config(
            snr_dbs=(8.0,), train_steps=FAST_STEPS, retrain_steps=700,
            seed=FAST_SEED, n_symbols=120_000, max_errors=1500,
            extraction_resolution=128,
        )
        return run_table1(cfg)

    def test_before_retraining_catastrophic(self, result):
        m = result.measured[8.0]
        assert m["ae_before"] > 0.25
        assert m["centroid_before"] > 0.25

    def test_after_retraining_near_baseline(self, result):
        """Paper: 'the BERs after retraining nearly approach the baseline'."""
        m = result.measured[8.0]
        assert m["ae_after"] < 3 * m["baseline"]
        assert m["centroid_after"] < 3 * m["baseline"]

    def test_no_centroid_drawback(self, result):
        """Paper: 'no drawback of using the extracted centroids'."""
        m = result.measured[8.0]
        assert m["centroid_after"] < m["ae_after"] * 1.6 + 1e-3

    def test_table_renders_with_paper_rows(self, result):
        out = result.to_table()
        assert "paper" in out and "measured" in out


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(Table2Config())

    def test_all_reports(self, result):
        assert set(result.reports) == {"soft_demapper", "ae_inference", "ae_training"}

    def test_simulation_cross_check(self, result):
        """Cycle-accurate simulation must agree with the closed-form model."""
        assert result.simulated_ii["soft_demapper"] == 2.0
        assert result.simulated_ii["ae_inference"] == 12.0
        assert result.simulated_latency_cycles["soft_demapper"] == 8

    def test_ratios(self, result):
        assert result.ratio("dsp") == 352
        assert 8 < result.ratio("lut") < 13
        assert 30 < result.ratio("energy") < 70

    def test_replication_plan(self, result):
        assert result.replication.reaches_gbps

    def test_table_renders(self, result):
        out = result.to_table()
        assert "headline ratios" in out
        assert "Gbit/s" in out

    def test_unknown_ratio_metric(self, result):
        with pytest.raises(ValueError):
            result.ratio("gates")
