"""Summary digest and CLI entry points (reduced-scale smoke)."""

import numpy as np
import pytest

from repro.experiments.summary import SummaryConfig, run


class TestSummary:
    @pytest.fixture(scope="class")
    def result(self):
        # full training budget (900 steps undertrains the 12 dB point —
        # the high-SNR loss surface needs the cosine tail), reduced sweep
        cfg = SummaryConfig(seed=4242, train_steps=2500, max_symbols=150_000,
                            max_errors=1000, quick=True)
        return run(cfg, verbose=False)

    def test_all_claims_evaluated(self, result):
        assert len(result.claims) == 7

    def test_all_claims_hold_at_reduced_scale(self, result):
        violated = [k for k, ok in result.claims.items() if not ok]
        assert not violated, f"claims violated: {violated}"

    def test_timings_recorded(self, result):
        assert set(result.elapsed_s) == {"fig2", "fig3", "table1", "table2"}
        assert all(t >= 0 for t in result.elapsed_s.values())

    def test_table_renders(self, result):
        out = result.to_table()
        assert "HOLDS" in out


class TestCliMains:
    def test_table2_main_runs(self, capsys):
        from repro.experiments.table2_fpga import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "headline ratios" in out

    def test_fig2_config_flags_parse(self):
        """Argument wiring only (the full run is covered by benches)."""
        import argparse

        from repro.experiments import fig2_ber

        parser = argparse.ArgumentParser()
        parser.add_argument("--seed", type=int, default=fig2_ber.DEFAULT_SEED)
        args = parser.parse_args(["--seed", "7"])
        assert args.seed == 7
