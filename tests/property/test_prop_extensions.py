"""Property-based tests for the extension modules (OFDM, conv code, tracking)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ecc import ConvolutionalCode
from repro.link.ofdm import MultipathChannel, OFDMConfig, ofdm_demodulate, ofdm_modulate, subcarrier_gains

SETTINGS = dict(max_examples=25, deadline=None)


class TestOFDMProperties:
    @given(
        n_sc=st.sampled_from([16, 32, 64]),
        cp=st.integers(0, 15),
        frames=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    @settings(**SETTINGS)
    def test_modulate_demodulate_roundtrip(self, n_sc, cp, frames, seed):
        cfg = OFDMConfig(n_subcarriers=n_sc, cp_length=cp)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(frames, n_sc)) + 1j * rng.normal(size=(frames, n_sc))
        assert np.allclose(ofdm_demodulate(ofdm_modulate(x, cfg), cfg), x)

    @given(
        n_taps=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    @settings(**SETTINGS)
    def test_cp_diagonalisation_whenever_cp_covers_channel(self, n_taps, seed):
        cfg = OFDMConfig(n_subcarriers=64, cp_length=16)
        if n_taps - 1 > cfg.cp_length:
            return
        rng = np.random.default_rng(seed)
        taps = MultipathChannel.exponential_profile(n_taps, rng=seed)
        h = subcarrier_gains(taps, 64)
        x = rng.normal(size=(3, 64)) + 1j * rng.normal(size=(3, 64))
        rx = MultipathChannel(taps).forward(ofdm_modulate(x, cfg))
        assert np.allclose(ofdm_demodulate(rx, cfg), h[None, :] * x, atol=1e-9)

    @given(
        seed=st.integers(0, 2**16),
        split=st.integers(1, 199),
    )
    @settings(**SETTINGS)
    def test_streaming_convolution_split_invariant(self, seed, split):
        rng = np.random.default_rng(seed)
        taps = MultipathChannel.exponential_profile(6, rng=seed)
        x = rng.normal(size=200) + 1j * rng.normal(size=200)
        whole = MultipathChannel(taps).forward(x)
        ch = MultipathChannel(taps)
        parts = np.concatenate([ch.forward(x[:split]), ch.forward(x[split:])])
        assert np.allclose(whole, parts)


class TestConvCodeProperties:
    @given(data=hnp.arrays(np.int8, st.integers(1, 120), elements=st.integers(0, 1)))
    @settings(**SETTINGS)
    def test_noiseless_roundtrip_any_length(self, data):
        code = ConvolutionalCode((0b111, 0b101), 3)
        assert np.array_equal(code.decode_hard(code.encode(data)).data, data)

    @given(
        data=hnp.arrays(np.int8, 64, elements=st.integers(0, 1)),
        pos=st.integers(0, 131),
    )
    @settings(**SETTINGS)
    def test_single_error_always_corrected(self, data, pos):
        code = ConvolutionalCode((0b111, 0b101), 3)
        coded = code.encode(data)
        coded[pos % coded.size] ^= 1
        assert np.array_equal(code.decode_hard(coded).data, data)

    @given(
        a=hnp.arrays(np.int8, 50, elements=st.integers(0, 1)),
        b=hnp.arrays(np.int8, 50, elements=st.integers(0, 1)),
    )
    @settings(**SETTINGS)
    def test_linearity(self, a, b):
        code = ConvolutionalCode((0b111, 0b101), 3)
        assert np.array_equal(code.encode(a ^ b), code.encode(a) ^ code.encode(b))

    @given(
        llr_scale=st.floats(0.5, 20.0),
        seed=st.integers(0, 2**16),
    )
    @settings(**SETTINGS)
    def test_decoding_invariant_to_llr_scaling(self, llr_scale, seed):
        """Viterbi picks the max-metric path; positive scaling of all LLRs
        cannot change the argmax."""
        code = ConvolutionalCode((0b111, 0b101), 3)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=40, dtype=np.int8)
        coded = code.encode(data)
        llrs = (2.0 * coded - 1.0) * 2.0 + rng.normal(0, 1.5, coded.size)
        d1 = code.decode_soft(llrs)
        d2 = code.decode_soft(llrs * llr_scale)
        assert np.array_equal(d1.data, d2.data)


class TestTrackingProperties:
    @given(
        phi=st.floats(-np.pi, np.pi),
        gain=st.floats(0.5, 2.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_tracker_recovers_any_rigid_motion(self, phi, gain, seed):
        """Noiseless rigid channel: one tracker update recovers it exactly."""
        from repro.extraction import CentroidTracker, HybridDemapper
        from repro.modulation import qam_constellation

        qam = qam_constellation(16)
        hybrid = HybridDemapper(constellation=qam, sigma2=0.01)
        tracker = CentroidTracker(hybrid)
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, 16, size=128)
        h = gain * np.exp(1j * phi)
        rigid_ok = tracker.update(idx, h * qam.points[idx])
        assert rigid_ok
        assert np.isclose(tracker.cumulative_gain, h, rtol=1e-9)
        assert np.allclose(tracker.current.constellation.points, h * qam.points)
