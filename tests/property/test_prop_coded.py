"""Property-based tests (hypothesis) for the coded-traffic substrate.

The load-bearing algebraic facts behind the serving coded path, checked
over *random* code parameters instead of the two textbook codes the unit
tests pin:

* noiseless encode → soft-decode is **exact for every valid generator
  set** — ``u(D) ↦ (u·g_j(D))_j`` is injective over GF(2)[D] (a nonzero
  polynomial is not a zero divisor), so the transmitted path is the unique
  codeword matching all ±LLRs and the correlation metric makes it strictly
  best;
* the backend ``viterbi_decode`` kernel is bit-identical to the pure-python
  reference ACS on arbitrary codes and arbitrary (noisy) LLRs;
* CRC ``append`` → ``check`` round-trips, and any single-bit corruption is
  detected (both presets have a degree-≥1 generator with an odd-weight
  factor... we assert the weaker, always-true single-flip property);
* interleave ∘ deinterleave is the identity for both interleaver kinds, on
  int8 bits and float LLR blocks alike (the decoder relies on the float
  path);
* the serving :class:`~repro.serving.coding.CodedLayout` round-trips
  encode → decode noiselessly for random configs and payload budgets.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backend import backend_from_name
from repro.ecc import CRC8_CCITT, CRC16_CCITT, BlockInterleaver, RandomInterleaver
from repro.ecc.convolutional import ConvolutionalCode
from repro.serving.coding import CodedFrameConfig, coded_layout

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def conv_codes(draw):
    """A random valid (generators, constraint_length) pair, K in [2, 7]."""
    K = draw(st.integers(2, 7))
    n_out = draw(st.integers(2, 3))
    gens = tuple(
        draw(st.lists(st.integers(1, (1 << K) - 1), min_size=n_out, max_size=n_out))
    )
    return ConvolutionalCode(gens, K)


class TestConvolutionalProperties:
    @given(code=conv_codes(), data=st.data())
    @settings(**SETTINGS)
    def test_noiseless_decode_exact_for_any_generators(self, code, data):
        n_info = data.draw(st.integers(1, 96))
        seed = data.draw(st.integers(0, 2**32 - 1))
        bits = np.random.default_rng(seed).integers(0, 2, n_info).astype(np.int8)
        coded = code.encode(bits)
        assert coded.size == code.encoded_length(n_info)
        pseudo = (2.0 * coded.astype(np.float64) - 1.0) * 4.0
        res = code.decode_soft(pseudo.reshape(-1, code.n_out))
        assert np.array_equal(res.data, bits)

    @given(code=conv_codes(), data=st.data())
    @settings(**SETTINGS)
    def test_backend_kernel_matches_reference_on_noisy_llrs(self, code, data):
        n_steps = data.draw(st.integers(code.k, 64))
        seed = data.draw(st.integers(0, 2**32 - 1))
        llrs = np.random.default_rng(seed).normal(size=(n_steps, code.n_out)) * 3.0
        ref = code.decode_soft(llrs)
        got = code.decode_soft(llrs, backend=backend_from_name("numpy"))
        assert np.array_equal(got.data, ref.data)
        assert got.path_metric == ref.path_metric


class TestCrcProperties:
    @given(
        crc=st.sampled_from([CRC8_CCITT, CRC16_CCITT]),
        n_bytes=st.integers(1, 32),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(**SETTINGS)
    def test_append_check_roundtrip(self, crc, n_bytes, seed):
        bits = np.random.default_rng(seed).integers(0, 2, 8 * n_bytes).astype(np.int8)
        assert crc.check(crc.append(bits))

    @given(
        crc=st.sampled_from([CRC8_CCITT, CRC16_CCITT]),
        n_bytes=st.integers(1, 16),
        seed=st.integers(0, 2**32 - 1),
        data=st.data(),
    )
    @settings(**SETTINGS)
    def test_single_bit_flip_detected(self, crc, n_bytes, seed, data):
        bits = np.random.default_rng(seed).integers(0, 2, 8 * n_bytes).astype(np.int8)
        framed = crc.append(bits)
        pos = data.draw(st.integers(0, framed.size - 1))
        corrupted = framed.copy()
        corrupted[pos] ^= 1
        assert not crc.check(corrupted)


class TestInterleaverProperties:
    @given(
        rows=st.integers(1, 12),
        cols=st.integers(1, 12),
        blocks=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(**SETTINGS)
    def test_block_interleaver_identity(self, rows, cols, blocks, seed):
        rng = np.random.default_rng(seed)
        il = BlockInterleaver(rows, cols)
        bits = rng.integers(0, 2, rows * cols * blocks).astype(np.int8)
        assert np.array_equal(il.deinterleave(il.interleave(bits)), bits)
        llrs = rng.normal(size=(blocks, rows * cols))  # the decoder's float path
        assert np.array_equal(il.deinterleave(il.interleave(llrs)), llrs)

    @given(
        size=st.integers(1, 128),
        blocks=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(**SETTINGS)
    def test_random_interleaver_identity(self, size, blocks, seed):
        rng = np.random.default_rng(seed)
        il = RandomInterleaver(size, rng)
        bits = rng.integers(0, 2, size * blocks).astype(np.int8)
        assert np.array_equal(il.deinterleave(il.interleave(bits)), bits)
        llrs = rng.normal(size=(blocks, size))
        assert np.array_equal(il.deinterleave(il.interleave(llrs)), llrs)


class TestCodedLayoutProperties:
    @given(
        crc=st.sampled_from(["crc8", "crc16"]),
        interleave=st.booleans(),
        extra_bits=st.integers(0, 37),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(**SETTINGS)
    def test_encode_decode_roundtrip(self, crc, interleave, extra_bits, seed):
        config = CodedFrameConfig(crc=crc, interleave=interleave)
        n_payload_bits = 192 + extra_bits  # always enough for >= 8 info bits
        layout = coded_layout(config, n_payload_bits)
        assert layout.n_info % 8 == 0 and layout.n_info >= 8
        assert layout.coded_len + layout.pad == n_payload_bits
        info = np.random.default_rng(seed).integers(0, 2, layout.n_info).astype(np.int8)
        payload = layout.encode(info)
        assert payload.shape == (n_payload_bits,)
        pseudo = (2.0 * payload.astype(np.float64) - 1.0) * 4.0
        dec, crc_ok, _ = layout.decode(pseudo)
        assert crc_ok and np.array_equal(dec, info)
        # batched row decode is bit-identical to the solo decode
        rows = layout.decode_rows(pseudo[None, :], backend=backend_from_name("numpy"))
        assert rows[0][1] and np.array_equal(rows[0][0], info)
