"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.fpga import FixedPointFormat
from repro.modulation.bits import bits_to_indices, indices_to_bits
from repro.modulation.gray import gray_decode, gray_encode

SETTINGS = dict(max_examples=50, deadline=None)


class TestBitsProperties:
    @given(
        idx=hnp.arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 2**10 - 1)),
    )
    @settings(**SETTINGS)
    def test_roundtrip_any_width(self, idx):
        bits = indices_to_bits(idx, 10)
        assert np.array_equal(bits_to_indices(bits), idx)

    @given(k=st.integers(1, 16), value=st.integers(0, 2**16 - 1))
    @settings(**SETTINGS)
    def test_bit_count_matches_popcount(self, k, value):
        value = value % (1 << k)
        bits = indices_to_bits(np.array([value]), k)
        assert bits.sum() == bin(value).count("1")

    @given(n=st.integers(0, 2**20))
    @settings(**SETTINGS)
    def test_gray_roundtrip(self, n):
        assert gray_decode(gray_encode(n)) == n

    @given(n=st.integers(0, 2**20 - 2))
    @settings(**SETTINGS)
    def test_gray_adjacent_single_bit(self, n):
        diff = gray_encode(n) ^ gray_encode(n + 1)
        assert diff != 0 and (diff & (diff - 1)) == 0  # exactly one bit set


class TestFixedPointProperties:
    fmts = st.builds(
        FixedPointFormat,
        st.integers(4, 16),
        st.integers(0, 3),
    )

    @given(fmt=fmts, x=st.floats(-1000, 1000))
    @settings(**SETTINGS)
    def test_quantize_idempotent(self, fmt, x):
        once = fmt.quantize(x)
        assert fmt.quantize(once) == once

    @given(fmt=fmts, x=st.floats(-1.9, 1.9))
    @settings(**SETTINGS)
    def test_in_range_error_bounded(self, fmt, x):
        # value within representable range -> error <= LSB/2
        if fmt.min_value <= x <= fmt.max_value:
            assert abs(fmt.quantize(x) - x) <= fmt.quantization_error_bound() + 1e-15

    @given(fmt=fmts, a=st.floats(-100, 100), b=st.floats(-100, 100))
    @settings(**SETTINGS)
    def test_quantize_monotone(self, fmt, a, b):
        lo, hi = min(a, b), max(a, b)
        assert fmt.quantize(lo) <= fmt.quantize(hi)

    @given(fmt=fmts, x=st.floats(-1e6, 1e6))
    @settings(**SETTINGS)
    def test_always_saturates_into_range(self, fmt, x):
        q = fmt.quantize(x)
        assert fmt.min_value <= q <= fmt.max_value


class TestLlrProperties:
    @given(
        y_re=st.floats(-3, 3), y_im=st.floats(-3, 3),
        sigma2=st.floats(0.001, 2.0),
    )
    @settings(**SETTINGS)
    def test_maxlog_hard_decision_is_nearest_point(self, y_re, y_im, sigma2):
        from repro.modulation import HardDemapper, MaxLogDemapper, qam_constellation

        qam = qam_constellation(16)
        y = np.array([complex(y_re, y_im)])
        ml = MaxLogDemapper(qam).demap_bits(y, sigma2)
        hd = HardDemapper(qam).demap_bits(y)
        # ties on exact boundaries may differ; skip those
        d = np.abs(y[0] - qam.points)
        d_sorted = np.sort(d)
        if d_sorted[1] - d_sorted[0] > 1e-9:
            assert np.array_equal(ml, hd)

    @given(scale=st.floats(0.1, 10.0), y_re=st.floats(-2, 2), y_im=st.floats(-2, 2))
    @settings(**SETTINGS)
    def test_maxlog_llr_scaling(self, scale, y_re, y_im):
        from repro.backend import FLOAT32_LLR_RTOL, get_backend
        from repro.modulation import MaxLogDemapper, qam_constellation

        ml = MaxLogDemapper(qam_constellation(16))
        y = np.array([complex(y_re, y_im)])
        l1 = ml.llrs(y, 0.1)
        l2 = ml.llrs(y, 0.1 * scale)
        # tier-aware tolerance: the process-wide backend may be float32
        rtol = 1e-9 if get_backend().dtype == np.dtype(np.float64) else FLOAT32_LLR_RTOL
        atol = rtol * (float(np.abs(l1).max()) + 1.0)
        assert np.allclose(l1, l2 * scale, rtol=rtol, atol=atol)

    @given(y_re=st.floats(-2, 2), y_im=st.floats(-2, 2), sigma2=st.floats(0.01, 1.0))
    @settings(**SETTINGS)
    def test_exact_llr_magnitude_bounded_by_maxlog_plus_logM(self, y_re, y_im, sigma2):
        # |llr_exact - llr_maxlog| <= log(M/2): the log-sum-exp correction
        from repro.modulation import ExactLogMAPDemapper, MaxLogDemapper, qam_constellation

        qam = qam_constellation(16)
        y = np.array([complex(y_re, y_im)])
        ex = ExactLogMAPDemapper(qam).llrs(y, sigma2)
        ml = MaxLogDemapper(qam).llrs(y, sigma2)
        assert np.all(np.abs(ex - ml) <= np.log(8.0) + 1e-9)


class TestEccProperties:
    @given(
        r=st.integers(2, 5),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_hamming_corrects_any_single_flip(self, r, data):
        from repro.ecc import HammingCode

        code = HammingCode(r)
        bits = data.draw(
            hnp.arrays(np.int8, (3, code.k), elements=st.integers(0, 1))
        )
        pos = data.draw(st.integers(0, code.n - 1))
        block = data.draw(st.integers(0, 2))
        cw = code.encode(bits)
        cw[block, pos] ^= 1
        res = code.decode(cw)
        assert np.array_equal(res.data, bits)
        assert res.corrected == 1

    @given(seed=st.integers(0, 2**16), size=st.integers(2, 64))
    @settings(**SETTINGS)
    def test_random_interleaver_roundtrip(self, seed, size):
        from repro.ecc import RandomInterleaver

        il = RandomInterleaver(size, rng=seed)
        bits = np.random.default_rng(seed).integers(0, 2, size=size * 3)
        assert np.array_equal(il.deinterleave(il.interleave(bits)), bits)

    @given(payload=hnp.arrays(np.int8, 64, elements=st.integers(0, 1)))
    @settings(**SETTINGS)
    def test_crc_roundtrip(self, payload):
        from repro.ecc import CRC16_CCITT

        assert CRC16_CCITT.check(CRC16_CCITT.append(payload))


class TestConstellationProperties:
    @given(order=st.sampled_from([4, 16, 64]), phi=st.floats(-np.pi, np.pi))
    @settings(**SETTINGS)
    def test_rotation_preserves_pairwise_distances(self, order, phi):
        from repro.modulation import qam_constellation

        c = qam_constellation(order)
        r = c.rotated(phi)
        d0 = np.abs(c.points[:, None] - c.points[None, :])
        d1 = np.abs(r.points[:, None] - r.points[None, :])
        assert np.allclose(d0, d1)

    @given(
        seed=st.integers(0, 2**16),
        order=st.sampled_from([4, 8, 16]),
    )
    @settings(**SETTINGS)
    def test_normalize_gives_unit_energy(self, seed, order):
        from repro.modulation import Constellation

        rng = np.random.default_rng(seed)
        pts = rng.normal(size=order) + 1j * rng.normal(size=order)
        if np.all(np.abs(pts) < 1e-12):
            return
        c = Constellation.from_points(pts, normalize=True)
        assert np.isclose(c.average_energy, 1.0)


class TestNNProperties:
    @given(
        seed=st.integers(0, 2**10),
        batch=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_bce_nonnegative_and_finite(self, seed, batch):
        from repro.nn import BCEWithLogitsLoss

        rng = np.random.default_rng(seed)
        z = rng.normal(scale=10, size=(batch, 4))
        t = rng.integers(0, 2, size=(batch, 4)).astype(float)
        loss, grad = BCEWithLogitsLoss()(z, t)
        assert loss >= 0.0
        assert np.all(np.isfinite(grad))

    @given(seed=st.integers(0, 2**10), alpha=st.floats(0.5, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_dense_homogeneity(self, seed, alpha):
        from repro.nn import Dense

        rng = np.random.default_rng(seed)
        layer = Dense(3, 4, bias=False, rng=rng)
        x = rng.normal(size=(5, 3))
        assert np.allclose(layer.forward(alpha * x), alpha * layer.forward(x))

    @given(seed=st.integers(0, 2**10))
    @settings(max_examples=25, deadline=None)
    def test_mapper_output_energy_bounded(self, seed):
        """Table-normalised mapper output symbols have bounded energy: the
        batch average can differ from 1, but no symbol exceeds the table
        maximum (which is finite and matched to unit average power)."""
        from repro.autoencoder import MapperANN

        rng = np.random.default_rng(seed)
        m = MapperANN(16, init="random", rng=rng)
        idx = rng.integers(0, 16, size=64)
        out = m.forward(idx)
        table = m.normalized_table()
        max_norm = np.sqrt((table**2).sum(axis=1)).max()
        norms = np.sqrt((out**2).sum(axis=1))
        assert np.all(norms <= max_norm + 1e-12)
