"""Property-based tests for extraction geometry and the pipeline model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.extraction import extract_centroids, sample_decision_regions, voronoi_inversion
from repro.fpga.hls import DataflowPipeline, PipelineStage
from repro.fpga.resources import ResourceVector

SETTINGS = dict(max_examples=20, deadline=None)


def nearest_label_fn(generators: np.ndarray):
    def f(pts: np.ndarray) -> np.ndarray:
        d = ((pts[:, None, :] - generators[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d, axis=1)

    return f


class TestVoronoiProperties:
    @given(seed=st.integers(0, 2**16), n=st.integers(3, 10))
    @settings(max_examples=10, deadline=None)
    def test_inversion_is_decision_equivalent(self, seed, n):
        """Generator recovery is ambiguous for degenerate adjacency graphs
        (non-adjacent pairs contribute no bisector, leaving free modes), so
        the guaranteed property is *decision equivalence*: the recovered
        generators induce (almost) the same partition."""
        rng = np.random.default_rng(seed)
        # rejection-sample generators with a minimum separation so the
        # partition is well-conditioned
        gens = []
        while len(gens) < n:
            cand = rng.uniform(-1.1, 1.1, size=2)
            if all(np.linalg.norm(cand - g) > 0.45 for g in gens):
                gens.append(cand)
        gen = np.array(gens)
        grid = sample_decision_regions(None, extent=1.8, resolution=128,
                                       label_fn=nearest_label_fn(gen))
        labels, rec = voronoi_inversion(grid)
        relabeled = labels[nearest_label_fn(rec)(grid.points())]
        agreement = np.mean(relabeled == grid.labels.ravel())
        assert agreement > 0.95

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_mass_centroids_inside_window(self, seed):
        rng = np.random.default_rng(seed)
        gen = rng.uniform(-1, 1, size=(5, 2))
        grid = sample_decision_regions(None, extent=1.5, resolution=64,
                                       label_fn=nearest_label_fn(gen))
        cents = extract_centroids(grid, 5, method="mass")
        pts = cents.points[cents.found]
        assert np.all(np.abs(pts.real) <= 1.5)
        assert np.all(np.abs(pts.imag) <= 1.5)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_every_present_label_gets_centroid(self, seed):
        rng = np.random.default_rng(seed)
        gen = rng.uniform(-1, 1, size=(6, 2))
        grid = sample_decision_regions(None, extent=1.5, resolution=64,
                                       label_fn=nearest_label_fn(gen))
        for method in ("mass", "vertex", "lsq"):
            cents = extract_centroids(grid, 6, method=method)
            present = grid.present_labels
            assert cents.found[present].all()


class TestPipelineProperties:
    stage_lists = st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 10)), min_size=1, max_size=6
    )

    @given(spec=stage_lists)
    @settings(**SETTINGS)
    def test_simulation_matches_closed_form(self, spec):
        stages = [
            PipelineStage(f"s{i}", ii=ii, depth=d, resources=ResourceVector())
            for i, (ii, d) in enumerate(spec)
        ]
        pipe = DataflowPipeline("prop", stages)
        sim = pipe.simulate(48)
        assert sim.first_latency == pipe.depth
        assert np.isclose(sim.steady_state_ii, pipe.ii)

    @given(spec=stage_lists)
    @settings(**SETTINGS)
    def test_throughput_latency_consistent(self, spec):
        stages = [
            PipelineStage(f"s{i}", ii=ii, depth=d, resources=ResourceVector())
            for i, (ii, d) in enumerate(spec)
        ]
        pipe = DataflowPipeline("prop", stages)
        assert pipe.latency_s >= 1.0 / pipe.clock_hz
        assert pipe.throughput_per_s <= pipe.clock_hz

    @given(
        lut=st.floats(0, 1e5), ff=st.floats(0, 1e5),
        dsp=st.floats(0, 360), bram=st.floats(0, 200),
        k=st.floats(0, 5),
    )
    @settings(**SETTINGS)
    def test_resource_scale_linearity(self, lut, ff, dsp, bram, k):
        r = ResourceVector(lut=lut, ff=ff, dsp=dsp, bram_36=bram)
        s = r.scale(k)
        assert np.isclose(s.lut, lut * k)
        assert np.isclose(s.dsp, dsp * k)

    @given(
        lut=st.floats(0, 1e5), dsp=st.floats(0, 360),
    )
    @settings(**SETTINGS)
    def test_power_monotone_in_resources(self, lut, dsp):
        from repro.fpga.power import CALIBRATED_ZU3EG_150MHZ as pm

        base = pm.power(ResourceVector(lut=lut, dsp=dsp))
        more = pm.power(ResourceVector(lut=lut + 100, dsp=dsp + 1))
        assert more > base
