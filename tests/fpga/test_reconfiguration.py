"""Reconfiguration timing, adaptation budget, FPGA-vs-ASIC comparison."""

import numpy as np
import pytest

from repro.fpga import (
    AdaptationBudget,
    ReconfigurationModel,
    build_ae_inference_accelerator,
    build_ae_training_accelerator,
    compare_fpga_vs_asic,
)


@pytest.fixture(scope="module")
def designs():
    _, inference = build_ae_inference_accelerator()
    _, training = build_ae_training_accelerator()
    return training, inference


class TestReconfigurationModel:
    def test_full_reconfig_time_plausible(self):
        rc = ReconfigurationModel()
        # tens of milliseconds for a ZU3EG-class full bitstream
        assert 0.01 < rc.full_reconfiguration_s < 0.2

    def test_partial_scales_with_area(self):
        rc = ReconfigurationModel()
        assert np.isclose(rc.partial_reconfiguration_s(0.5),
                          0.5 * rc.full_reconfiguration_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconfigurationModel(full_bitstream_bytes=0)
        rc = ReconfigurationModel()
        with pytest.raises(ValueError):
            rc.partial_reconfiguration_s(0.0)
        with pytest.raises(ValueError):
            rc.partial_reconfiguration_s(1.5)


class TestAdaptationBudget:
    def test_estimate_structure(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference)
        assert budget.total_s > 0
        # retraining dominates (1500 steps x 512 symbols at ~4 Msym/s >> ms)
        assert budget.retraining_s > budget.region_sampling_s
        assert budget.retraining_s > budget.reconfigure_to_training_s

    def test_retraining_time_formula(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference,
                                           retrain_steps=1000, batch_size=256)
        assert np.isclose(budget.retraining_s, 1000 * 256 / training.throughput_per_s)

    def test_sampling_time_formula(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference, extraction_resolution=128)
        assert np.isclose(budget.region_sampling_s, 128**2 / inference.throughput_per_s)

    def test_full_vs_partial(self, designs):
        training, inference = designs
        part = AdaptationBudget.estimate(training, inference, partial=True)
        full = AdaptationBudget.estimate(training, inference, partial=False)
        assert part.reconfigure_to_training_s < full.reconfigure_to_training_s

    def test_total_sums_phases(self, designs):
        training, inference = designs
        b = AdaptationBudget.estimate(training, inference)
        assert np.isclose(
            b.total_s,
            b.reconfigure_to_training_s + b.retraining_s
            + b.reconfigure_to_inference_s + b.region_sampling_s
            + b.centroid_computation_s,
        )

    def test_table_renders(self, designs):
        training, inference = designs
        out = AdaptationBudget.estimate(training, inference).to_table()
        assert "TOTAL" in out

    def test_validation(self, designs):
        training, inference = designs
        with pytest.raises(ValueError):
            AdaptationBudget.estimate(training, inference, retrain_steps=0)


class TestFpgaVsAsic:
    def test_asic_carries_both_designs(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference)
        cmp = compare_fpga_vs_asic(training, inference, budget)
        assert cmp.asic_resident_lut > cmp.fpga_resident_lut
        assert np.isclose(cmp.asic_resident_lut,
                          training.resources.lut + inference.resources.lut)

    def test_training_idle_fraction_is_extreme(self, designs):
        """The paper's point: 'this would result [in] high idle time of the
        training module on an ASIC'."""
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference)
        cmp = compare_fpga_vs_asic(training, inference, budget,
                                   adaptations_per_hour=60)
        assert cmp.asic_training_idle_fraction > 0.99

    def test_fpga_availability_high(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference)
        cmp = compare_fpga_vs_asic(training, inference, budget,
                                   adaptations_per_hour=60)
        assert cmp.fpga_inference_availability > 0.95

    def test_rate_too_high_rejected(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference)
        with pytest.raises(ValueError):
            compare_fpga_vs_asic(training, inference, budget,
                                 adaptations_per_hour=3600.0 / budget.total_s + 1e9)

    def test_table_renders(self, designs):
        training, inference = designs
        budget = AdaptationBudget.estimate(training, inference)
        out = compare_fpga_vs_asic(training, inference, budget).to_table()
        assert "ASIC" in out
