"""Fixed-point format tests: rounding, saturation, ranges."""

import numpy as np
import pytest

from repro.fpga import FixedPointFormat


class TestFormat:
    def test_derived_quantities(self):
        f = FixedPointFormat(8, 6)
        assert f.int_bits == 2
        assert f.scale == 2**-6
        assert f.min_int == -128 and f.max_int == 127
        assert np.isclose(f.max_value, 127 / 64)
        assert np.isclose(f.min_value, -2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPointFormat(1, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(8, 8)
        with pytest.raises(ValueError):
            FixedPointFormat(8, -1)
        with pytest.raises(ValueError):
            FixedPointFormat(33, 2)

    def test_quantize_on_grid_is_identity(self):
        f = FixedPointFormat(8, 4)
        vals = np.array([0.0, 0.25, -1.5, 3.0])
        assert np.allclose(f.quantize(vals), vals)

    def test_quantization_error_within_half_lsb(self, rng):
        f = FixedPointFormat(10, 6)
        x = rng.uniform(f.min_value + 0.1, f.max_value - 0.1, size=1000)
        err = np.abs(f.quantize(x) - x)
        assert err.max() <= f.quantization_error_bound() + 1e-12

    def test_saturation(self):
        f = FixedPointFormat(8, 6)
        assert f.quantize(100.0) == f.max_value
        assert f.quantize(-100.0) == f.min_value

    def test_round_half_even(self):
        f = FixedPointFormat(8, 0)  # integer grid
        # 0.5 rounds to 0 (even), 1.5 rounds to 2 (even)
        assert f.quantize(0.5) == 0.0
        assert f.quantize(1.5) == 2.0

    def test_to_from_int_roundtrip(self, rng):
        f = FixedPointFormat(12, 8)
        codes = rng.integers(f.min_int, f.max_int + 1, size=100)
        assert np.array_equal(f.to_int(f.from_int(codes)), codes)

    def test_saturate_int(self):
        f = FixedPointFormat(4, 0)  # range [-8, 7]
        assert np.array_equal(f.saturate_int(np.array([-100, 0, 100])), [-8, 0, 7])

    def test_str(self):
        assert str(FixedPointFormat(8, 6)) == "Q2.6"
