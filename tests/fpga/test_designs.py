"""The three Table-2 designs: device fit, power calibration, paper shape."""

import numpy as np
import pytest

from repro.fpga import (
    PowerModel,
    ZU3EG,
    build_ae_inference_accelerator,
    build_ae_training_accelerator,
    build_soft_demapper_core,
    replicate_for_throughput,
)
from repro.fpga.power import CALIBRATED_ZU3EG_150MHZ
from repro.fpga.report import PAPER_TABLE2, format_table2, table2_rows
from repro.fpga.resources import ResourceVector


class TestDevice:
    def test_zu3eg_capacities(self):
        assert ZU3EG.lut == 70560
        assert ZU3EG.dsp == 360

    def test_utilization(self):
        u = ZU3EG.utilization(ResourceVector(lut=7056, dsp=36))
        assert np.isclose(u["lut"], 0.1)
        assert np.isclose(u["dsp"], 0.1)

    def test_fits_with_margin(self):
        r = ResourceVector(lut=65000)
        assert ZU3EG.fits(r)
        assert not ZU3EG.fits(r, margin=0.2)

    def test_max_instances(self):
        r = ResourceVector(lut=10000, dsp=10)
        assert ZU3EG.max_instances(r) == 7  # LUT-bound: 70560/10000

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            ZU3EG.fits(ResourceVector(), margin=1.0)


class TestPowerCalibration:
    def test_reproduces_paper_power_on_paper_resources(self):
        """The calibrated model must return the paper's three power numbers
        when fed the paper's own resource counts (exact fit by construction)."""
        pm = CALIBRATED_ZU3EG_150MHZ
        rows = [
            (ResourceVector(lut=1107, ff=1042, dsp=1, bram_36=0.0), 5.5e-2),
            (ResourceVector(lut=11343, ff=10895, dsp=352, bram_36=18.5), 4.53e-1),
            (ResourceVector(lut=19793, ff=19013, dsp=343, bram_36=89.0), 5.47e-1),
        ]
        for res, power in rows:
            assert np.isclose(pm.power(res), power, rtol=1e-6)

    def test_coefficients_physically_plausible(self):
        pm = CALIBRATED_ZU3EG_150MHZ
        assert 0.01 < pm.static_w < 0.1        # tens of mW static
        assert 1e-6 < pm.lut_ff_w < 1e-5       # a few uW per LUT/FF
        assert 1e-4 < pm.dsp_w < 3e-3          # ~1 mW per DSP

    def test_dynamic_power_scales_with_clock(self):
        pm = CALIBRATED_ZU3EG_150MHZ
        res = ResourceVector(lut=1000, ff=1000, dsp=10)
        p150 = pm.power(res)
        p300 = pm.power(res, clock_hz=300e6)
        dynamic = p150 - pm.static_w
        assert np.isclose(p300, pm.static_w + 2 * dynamic)

    def test_energy_per_item(self):
        pm = PowerModel(static_w=0.1, lut_ff_w=0, dsp_w=0, bram_w=0)
        assert np.isclose(pm.energy_per_item(ResourceVector(), 1e6), 1e-7)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(static_w=-1, lut_ff_w=0, dsp_w=0, bram_w=0)
        pm = CALIBRATED_ZU3EG_150MHZ
        with pytest.raises(ValueError):
            pm.power(ResourceVector(), clock_hz=0)
        with pytest.raises(ValueError):
            pm.energy_per_item(ResourceVector(), 0)


class TestSoftDemapperCore:
    def test_matches_paper_row(self):
        _, rep = build_soft_demapper_core()
        paper = PAPER_TABLE2["soft_demapper"]
        assert np.isclose(rep.latency_s, paper.latency_s, rtol=0.01)
        assert np.isclose(rep.throughput_per_s, paper.throughput_per_s, rtol=0.01)
        assert round(rep.resources.dsp) == paper.dsp == 1
        assert abs(rep.resources.lut - paper.lut) / paper.lut < 0.15
        assert abs(rep.resources.ff - paper.ff) / paper.ff < 0.15
        assert np.isclose(rep.power_w, paper.power_w, rtol=0.1)

    def test_fits_device_comfortably(self):
        _, rep = build_soft_demapper_core()
        assert ZU3EG.fits(rep.resources, margin=0.9)  # uses < 10% of everything

    def test_dop_trades_ii_for_area(self):
        _, slow = build_soft_demapper_core(distance_units=2)
        _, fast = build_soft_demapper_core(distance_units=16)
        assert fast.throughput_per_s > slow.throughput_per_s
        assert fast.resources.lut > slow.resources.lut

    def test_replication_reaches_gbps(self):
        _, rep = build_soft_demapper_core()
        plan = replicate_for_throughput(rep, bits_per_symbol=4)
        assert plan.instances > 10
        assert plan.reaches_gbps
        assert plan.aggregate_bits_per_s > 1e9
        assert max(plan.utilization.values()) <= 0.9

    def test_ae_inference_cannot_replicate(self):
        _, rep = build_ae_inference_accelerator()
        plan = replicate_for_throughput(rep, bits_per_symbol=4, margin=0.0)
        assert plan.instances == 1  # DSP-bound: no second instance fits
        assert not plan.reaches_gbps


class TestAEDesigns:
    def test_inference_matches_paper_shape(self):
        _, rep = build_ae_inference_accelerator()
        paper = PAPER_TABLE2["ae_inference"]
        assert round(rep.resources.dsp) == paper.dsp == 352
        assert abs(rep.resources.lut - paper.lut) / paper.lut < 0.1
        assert abs(rep.resources.ff - paper.ff) / paper.ff < 0.1
        assert np.isclose(rep.throughput_per_s, paper.throughput_per_s, rtol=0.05)
        assert rep.latency_s < 2 * paper.latency_s

    def test_training_matches_paper_shape(self):
        _, rep = build_ae_training_accelerator()
        paper = PAPER_TABLE2["ae_training"]
        assert abs(rep.resources.dsp - paper.dsp) / paper.dsp < 0.05
        assert abs(rep.resources.lut - paper.lut) / paper.lut < 0.1
        assert abs(rep.resources.ff - paper.ff) / paper.ff < 0.1
        assert abs(rep.resources.bram_36 - paper.bram) / paper.bram < 0.15
        assert 0.5 * paper.throughput_per_s < rep.throughput_per_s < 2 * paper.throughput_per_s

    def test_all_designs_fit_device(self):
        for key, rep in table2_rows().items():
            assert ZU3EG.fits(rep.resources), f"{key} exceeds ZU3EG"

    def test_training_heavier_than_inference(self):
        rows = table2_rows()
        inf, tr = rows["ae_inference"], rows["ae_training"]
        assert tr.resources.lut > inf.resources.lut
        assert tr.resources.bram_36 > inf.resources.bram_36
        assert tr.throughput_per_s < inf.throughput_per_s

    def test_headline_ratios(self):
        """The paper's conclusions: ~10x LUT, 352x DSP, ~10x power, ~50x energy."""
        rows = table2_rows()
        soft, ae = rows["soft_demapper"], rows["ae_inference"]
        assert 8 < ae.resources.lut / soft.resources.lut < 13
        assert ae.resources.dsp / soft.resources.dsp == 352
        assert 5 < ae.power_w / soft.power_w < 12
        assert 30 < ae.energy_per_symbol_j / soft.energy_per_symbol_j < 70

    def test_folding_validation(self):
        with pytest.raises(ValueError):
            build_ae_inference_accelerator(folding=[(1, 1)])
        with pytest.raises(ValueError):
            build_ae_training_accelerator(update_units=0)

    def test_format_table2_renders(self):
        out = format_table2()
        assert "Soft-demapper" in out
        assert "paper" in out and "model" in out
