"""HLS-style report rendering (golden checks on the Table-2 designs)."""

import pytest

from repro.fpga import build_ae_inference_accelerator, build_soft_demapper_core
from repro.fpga.hls_report import stage_report, utilization_report


class TestStageReport:
    def test_soft_demapper_stages_listed(self):
        pipe, _ = build_soft_demapper_core()
        out = stage_report(pipe)
        for name in ("distances", "min-trees", "llr-scale", "TOTAL"):
            assert name in out

    def test_totals_match_pipeline(self):
        pipe, _ = build_soft_demapper_core()
        out = stage_report(pipe)
        assert f"latency {pipe.latency_s * 1e9:.1f} ns" in out
        # total row carries the pipeline II
        total_line = [l for l in out.splitlines() if l.startswith("TOTAL")][0]
        assert f" {pipe.ii} " in total_line

    def test_ae_inference_report(self):
        pipe, _ = build_ae_inference_accelerator()
        out = stage_report(pipe)
        assert "dense0" in out and "sigmoid" in out


class TestUtilizationReport:
    def test_soft_demapper_fits(self):
        pipe, _ = build_soft_demapper_core()
        out = utilization_report(pipe)
        assert "fits" in out
        assert "DOES NOT FIT" not in out

    def test_overfull_design_flagged(self):
        # 64 fully-parallel hidden layers would blow the DSP budget
        pipe, _ = build_ae_inference_accelerator(
            folding=[(16, 2), (16, 16), (16, 16), (4, 16)]
        )
        out = utilization_report(pipe)
        assert "DOES NOT FIT" in out

    def test_percentages_rendered(self):
        pipe, _ = build_soft_demapper_core()
        out = utilization_report(pipe)
        assert "%" in out
