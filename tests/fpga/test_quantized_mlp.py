"""Quantized integer datapath vs the float demapper."""

import numpy as np
import pytest

from repro.fpga import FixedPointFormat, QuantizedDemapper
from repro.fpga.quantized_mlp import build_sigmoid_lut


class TestSigmoidLut:
    def test_monotone(self):
        table, _ = build_sigmoid_lut()
        assert np.all(np.diff(table) > 0)

    def test_accuracy(self):
        table, step = build_sigmoid_lut(entries=256, input_range=8.0)
        xs = -8.0 + step * np.arange(256)
        assert np.abs(table - 1 / (1 + np.exp(-xs))).max() < 1e-12  # exact at knots

    def test_validation(self):
        with pytest.raises(ValueError):
            build_sigmoid_lut(entries=4)
        with pytest.raises(ValueError):
            build_sigmoid_lut(input_range=0)


class TestQuantizedDemapper:
    @pytest.fixture(scope="class")
    def quantized(self, trained_system_8db):
        return QuantizedDemapper(trained_system_8db.demapper)

    def test_calibration_seed_is_reproducible(self, trained_system_8db):
        a = QuantizedDemapper(trained_system_8db.demapper, calibration_seed=7)
        b = QuantizedDemapper(trained_system_8db.demapper, calibration_seed=7)
        assert a.layer_formats == b.layer_formats

    def test_default_seed_matches_historical_default(self, trained_system_8db):
        # the old hard-coded default_rng(0) is now just the default seed
        old = QuantizedDemapper(
            trained_system_8db.demapper,
            calibration=np.random.default_rng(0).normal(size=(4096, 2)),
        )
        new = QuantizedDemapper(trained_system_8db.demapper)
        assert old.layer_formats == new.layer_formats

    def test_sigmoid_lut_shared_across_instances(self, trained_system_8db):
        a = QuantizedDemapper(trained_system_8db.demapper)
        b = QuantizedDemapper(trained_system_8db.demapper, calibration_seed=5)
        assert a._lut is b._lut  # module-level cache, not rebuilt per instance

    def test_hard_bits_mostly_match_float(self, quantized, trained_system_8db, rng):
        x = rng.normal(scale=0.8, size=(20_000, 2))
        q = quantized.hard_bits(x)
        f = trained_system_8db.demapper.hard_bits(x)
        assert np.mean(q == f) > 0.99

    def test_logits_close_to_float(self, quantized, trained_system_8db, rng):
        x = rng.normal(scale=0.5, size=(1000, 2))
        lq = quantized.logits(x)
        lf = trained_system_8db.demapper.logits(x)
        # 8-bit weights: logits agree to within a fraction of their scale
        assert np.median(np.abs(lq - lf)) < 0.5

    def test_probabilities_in_unit_interval(self, quantized, rng):
        p = quantized.probabilities(rng.normal(size=(100, 2)))
        assert np.all((p >= 0) & (p <= 1))

    def test_integer_forward_is_integral(self, quantized, rng):
        acc = quantized.integer_forward(rng.normal(size=(10, 2)))
        assert acc.dtype == np.int64

    def test_deterministic(self, quantized, rng):
        x = rng.normal(size=(50, 2))
        assert np.array_equal(quantized.hard_bits(x), quantized.hard_bits(x.copy()))

    def test_symbol_labels_pack(self, quantized, rng):
        x = rng.normal(size=(20, 2))
        bits = quantized.hard_bits(x)
        assert np.array_equal(
            quantized.symbol_labels(x), bits @ np.array([8, 4, 2, 1])
        )

    def test_weight_memory_accounting(self, quantized):
        # 660 params: 608 weights * 8 bits + 52 biases * (8+12+8) bits
        assert quantized.weight_memory_bits == 608 * 8 + 52 * 28

    def test_wider_formats_reduce_error(self, trained_system_8db, rng):
        x = rng.normal(scale=0.6, size=(2000, 2))
        lf = trained_system_8db.demapper.logits(x)
        err = {}
        for bits in (6, 8, 12):
            q = QuantizedDemapper(
                trained_system_8db.demapper,
                weight_format=FixedPointFormat(bits, bits - 2),
                activation_format=FixedPointFormat(bits + 2, bits - 2),
            )
            err[bits] = np.median(np.abs(q.logits(x) - lf))
        assert err[12] < err[8] < err[6]

    def test_quantized_ber_close_to_float(self, trained_system_8db,
                                          trained_constellation_8db):
        from repro.channels import AWGNChannel
        from repro.modulation import Mapper, random_indices
        from repro.utils.complexmath import complex_to_real2

        rng = np.random.default_rng(31)
        q = QuantizedDemapper(trained_system_8db.demapper)
        const = trained_constellation_8db
        idx = random_indices(rng, 100_000, 16)
        ch = AWGNChannel(8.0, 4, rng=rng)
        y2 = complex_to_real2(ch(Mapper(const)(idx)))
        truth = const.bit_matrix[idx]
        ber_q = np.mean(q.hard_bits(y2) != truth)
        ber_f = np.mean(trained_system_8db.demapper.hard_bits(y2) != truth)
        assert ber_q < ber_f * 1.2 + 1e-4  # 8-bit quantisation costs ~nothing

    def test_extraction_from_quantized_model(self, trained_system_8db,
                                             trained_constellation_8db):
        """The on-device extraction path: sample the INTEGER datapath."""
        from repro.extraction import extract_centroids, sample_decision_regions

        q = QuantizedDemapper(trained_system_8db.demapper)
        grid = sample_decision_regions(q.bit_probability_fn(), extent=1.5, resolution=128)
        cents = extract_centroids(grid, 16, method="mass")
        filled = cents.fill_missing(trained_constellation_8db.points)
        disp = np.abs(filled.points - trained_constellation_8db.points)
        assert np.median(disp) < 0.2

    def test_requires_dense_layers(self):
        from repro.autoencoder import DemapperANN

        d = DemapperANN(4)
        d.net.layers = [d.net.layers[1]]  # only a ReLU left
        with pytest.raises(ValueError):
            QuantizedDemapper(d)
