"""Dataflow pipeline model: closed form vs cycle-accurate simulation; stage builders."""

import numpy as np
import pytest

from repro.fpga.hls import DataflowPipeline, PipelineStage
from repro.fpga.layers import (
    FLOAT32,
    INT8,
    INT16,
    dense_stage,
    distance_stage,
    llr_stage,
    min_tree_stage,
    sigmoid_stage,
)
from repro.fpga.resources import ResourceVector


def make_pipe(iis, depths, clock=100e6):
    stages = [
        PipelineStage(f"s{i}", ii=ii, depth=d, resources=ResourceVector(lut=10))
        for i, (ii, d) in enumerate(zip(iis, depths))
    ]
    return DataflowPipeline("test", stages, clock_hz=clock)


class TestClosedForm:
    def test_ii_is_max(self):
        assert make_pipe([1, 4, 2], [1, 1, 1]).ii == 4

    def test_depth_is_sum(self):
        assert make_pipe([1, 1, 1], [3, 5, 2]).depth == 10

    def test_latency_and_throughput(self):
        p = make_pipe([2, 1], [4, 4], clock=100e6)
        assert np.isclose(p.latency_s, 8 / 100e6)
        assert np.isclose(p.throughput_per_s, 50e6)

    def test_resources_aggregate(self):
        p = make_pipe([1, 1], [1, 1])
        assert p.resources.lut == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            DataflowPipeline("x", [])
        with pytest.raises(ValueError):
            PipelineStage("s", ii=0, depth=1)
        with pytest.raises(ValueError):
            PipelineStage("s", ii=1, depth=0)


class TestSimulationCrossValidation:
    @pytest.mark.parametrize(
        "iis,depths",
        [
            ([1], [5]),
            ([2, 1, 3], [4, 2, 6]),
            ([1, 1, 1, 1], [1, 1, 1, 1]),
            ([7, 2], [3, 9]),
            ([2, 8, 4], [5, 5, 5]),
        ],
    )
    def test_simulated_matches_closed_form(self, iis, depths):
        p = make_pipe(iis, depths)
        sim = p.simulate(64)
        assert sim.first_latency == p.depth
        assert np.isclose(sim.steady_state_ii, p.ii)

    def test_exit_cycles_monotone(self):
        p = make_pipe([3, 2], [4, 4])
        sim = p.simulate(32)
        assert np.all(np.diff(sim.exit_cycles) > 0)

    def test_single_item(self):
        p = make_pipe([4, 4], [3, 3])
        sim = p.simulate(1)
        assert sim.first_latency == 6
        with pytest.raises(ValueError):
            sim.steady_state_ii  # needs >= 2 items

    def test_validation(self):
        with pytest.raises(ValueError):
            make_pipe([1], [1]).simulate(0)


class TestDenseStage:
    def test_full_parallel_ii_one(self):
        s = dense_stage("d", 16, 16, pe=16, simd=16)
        assert s.ii == 1

    def test_folding_arithmetic(self):
        s = dense_stage("d", 16, 16, pe=2, simd=4)
        assert s.ii == (16 // 4) * (16 // 2)  # 32

    def test_dsp_scales_with_units(self):
        a = dense_stage("d", 16, 16, pe=1, simd=4, precision=FLOAT32)
        b = dense_stage("d", 16, 16, pe=2, simd=4, precision=FLOAT32)
        assert b.resources.dsp == 2 * a.resources.dsp - 0  # pe*simd*5

    def test_int8_uses_no_dsp(self):
        s = dense_stage("d", 16, 16, pe=4, simd=4, precision=INT8)
        assert s.resources.dsp == 0

    def test_int16_one_dsp_per_mac(self):
        s = dense_stage("d", 16, 16, pe=2, simd=2, precision=INT16)
        assert s.resources.dsp == 4

    def test_large_layer_uses_bram(self):
        s = dense_stage("d", 64, 64, pe=1, simd=1, precision=FLOAT32)
        assert s.resources.bram_36 > FLOAT32.fifo_bram  # weights in BRAM

    def test_small_layer_uses_lutram(self):
        s = dense_stage("d", 4, 4, pe=1, simd=1, precision=INT8)
        assert s.resources.bram_36 == INT8.fifo_bram

    def test_validation(self):
        with pytest.raises(ValueError):
            dense_stage("d", 16, 16, pe=0, simd=1)
        with pytest.raises(ValueError):
            dense_stage("d", 16, 16, pe=1, simd=32)


class TestSoftDemapperStages:
    def test_distance_stage_folding(self):
        assert distance_stage("dist", 16, units=8).ii == 2
        assert distance_stage("dist", 16, units=16).ii == 1
        assert distance_stage("dist", 16, units=3).ii == 6

    def test_distance_stage_no_dsp(self):
        assert distance_stage("dist", 16, units=8).resources.dsp == 0

    def test_min_tree_depth_log(self):
        assert min_tree_stage("min", 16, 4).depth == 4
        assert min_tree_stage("min", 64, 6).depth == 6

    def test_llr_stage_single_dsp(self):
        assert llr_stage("llr", 4).resources.dsp == 1

    def test_sigmoid_stage_float_uses_dsp(self):
        s = sigmoid_stage("sig", 4, precision=FLOAT32)
        assert s.resources.dsp == 4 * FLOAT32.sigmoid_dsp

    def test_sigmoid_stage_fixed_no_dsp(self):
        assert sigmoid_stage("sig", 4, precision=INT8).resources.dsp == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            distance_stage("d", 1, units=1)
        with pytest.raises(ValueError):
            distance_stage("d", 16, units=17)
        with pytest.raises(ValueError):
            min_tree_stage("m", 1, 0)
        with pytest.raises(ValueError):
            llr_stage("l", 0)


class TestResourceVector:
    def test_add_and_scale(self):
        a = ResourceVector(lut=10, ff=20, dsp=1, bram_36=0.5)
        b = a + a.scale(2)
        assert b.lut == 30 and b.ff == 60 and b.dsp == 3 and b.bram_36 == 1.5

    def test_total(self):
        vs = [ResourceVector(lut=1), ResourceVector(ff=2)]
        t = ResourceVector.total(vs)
        assert t.lut == 1 and t.ff == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(lut=-1)
        with pytest.raises(ValueError):
            ResourceVector(lut=1).scale(-1)

    def test_as_dict(self):
        d = ResourceVector(lut=1, ff=2, dsp=3, bram_36=4).as_dict()
        assert d == {"lut": 1, "ff": 2, "dsp": 3, "bram_36": 4}
