"""Integer soft-demapper datapath vs the float max-log reference."""

import numpy as np
import pytest

from repro.channels import AWGNChannel
from repro.fpga import FixedPointFormat
from repro.fpga.quantized_soft_demapper import QuantizedSoftDemapper
from repro.modulation import Mapper, MaxLogDemapper, qam_constellation, random_indices

SNR_DB = 8.0


@pytest.fixture(scope="module")
def setup():
    qam = qam_constellation(16)
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2
    rng = np.random.default_rng(40)
    idx = random_indices(rng, 120_000, 16)
    y = AWGNChannel(SNR_DB, 4, rng=rng)(Mapper(qam)(idx))
    return qam, sigma2, idx, y


class TestIntegerPipeline:
    def test_integer_llrs_are_int64(self, setup):
        qam, sigma2, _, y = setup
        q = QuantizedSoftDemapper(qam, sigma2)
        codes = q.integer_llrs(y[:100])
        assert codes.dtype == np.int64
        assert codes.max() <= q.llr_format.max_int
        assert codes.min() >= q.llr_format.min_int

    def test_hard_bits_match_float_maxlog(self, setup):
        qam, sigma2, _, y = setup
        q = QuantizedSoftDemapper(qam, sigma2)
        ml = MaxLogDemapper(qam)
        agree = np.mean(q.demap_bits(y) == ml.demap_bits(y, sigma2))
        assert agree > 0.999

    def test_ber_parity_with_float(self, setup):
        qam, sigma2, idx, y = setup
        truth = qam.bit_matrix[idx]
        q = QuantizedSoftDemapper(qam, sigma2)
        ml = MaxLogDemapper(qam)
        ber_q = np.mean(q.demap_bits(y) != truth)
        ber_f = np.mean(ml.demap_bits(y, sigma2) != truth)
        assert ber_q < ber_f * 1.05 + 1e-5

    def test_llr_values_track_float(self, setup):
        qam, sigma2, _, y = setup
        q = QuantizedSoftDemapper(qam, sigma2)
        ml = MaxLogDemapper(qam)
        lq = q.llrs(y[:5000])
        lf = ml.llrs(y[:5000], sigma2)
        sat = q.llr_format.max_value
        inside = np.abs(lf) < 0.8 * sat  # compare away from saturation
        err = np.abs(lq[inside] - lf[inside])
        assert np.median(err) < 0.3  # within the Q6.2 grid + input quantisation

    def test_llr_saturation(self, setup):
        qam, sigma2, _, _ = setup
        q = QuantizedSoftDemapper(qam, sigma2)
        # a point far outside the constellation saturates the LLR output
        # (two's complement: the negative rail is one LSB beyond the positive)
        llrs = q.llrs(np.array([10.0 + 10.0j]))
        assert np.all(llrs <= q.llr_format.max_value + 1e-12)
        assert np.all(llrs >= q.llr_format.min_value - 1e-12)
        assert np.any(np.abs(llrs) >= q.llr_format.max_value)  # it does saturate

    def test_deterministic(self, setup):
        qam, sigma2, _, y = setup
        q = QuantizedSoftDemapper(qam, sigma2)
        assert np.array_equal(q.integer_llrs(y[:100]), q.integer_llrs(y[:100].copy()))

    def test_memory_accounting(self, setup):
        qam, sigma2, _, _ = setup
        q = QuantizedSoftDemapper(qam, sigma2)
        assert q.centroid_memory_bits == 2 * 16 * 12

    def test_works_on_extracted_centroids(self, trained_system_8db,
                                          trained_constellation_8db):
        from repro.extraction import HybridDemapper

        sigma2 = AWGNChannel(SNR_DB, 4).sigma2
        hybrid = HybridDemapper.extract(trained_system_8db.demapper, sigma2,
                                        method="lsq", fallback=trained_constellation_8db)
        q = QuantizedSoftDemapper(hybrid.constellation, sigma2)
        rng = np.random.default_rng(41)
        idx = random_indices(rng, 100_000, 16)
        y = AWGNChannel(SNR_DB, 4, rng=rng)(trained_constellation_8db.points[idx])
        truth = trained_constellation_8db.bit_matrix[idx]
        ber_int = np.mean(q.demap_bits(y) != truth)
        ber_float = np.mean(hybrid.demap_bits(y) != truth)
        assert ber_int < ber_float * 1.1 + 1e-4

    def test_validation(self, setup):
        qam, sigma2, _, _ = setup
        with pytest.raises(ValueError):
            QuantizedSoftDemapper(qam, 0.0)
        with pytest.raises(ValueError):
            QuantizedSoftDemapper(qam, sigma2, scale_bits=0)
        with pytest.raises(ValueError):
            QuantizedSoftDemapper(qam, sigma2=1e9, scale_bits=1)


class TestLlrWidthCodedImpact:
    """LLR output width vs coded performance (the FEC interface trade)."""

    def test_narrow_llrs_still_decode(self, setup):
        from repro.ecc import ConvolutionalCode
        from repro.modulation.bits import bits_to_indices

        qam, _, _, _ = setup
        snr = 4.0
        sigma2 = AWGNChannel(snr, 4).sigma2
        code = ConvolutionalCode((0b111, 0b101), 3)
        rng = np.random.default_rng(42)
        data = rng.integers(0, 2, size=20_000, dtype=np.int8)
        coded = code.encode(data)
        pad = (-coded.size) % 4
        tx = np.concatenate([coded, np.zeros(pad, dtype=np.int8)])
        y = AWGNChannel(snr, 4, rng=rng)(qam.points[bits_to_indices(tx.reshape(-1, 4))])

        bers = {}
        for total, frac in ((4, 1), (6, 2), (8, 2)):
            q = QuantizedSoftDemapper(qam, sigma2,
                                      llr_format=FixedPointFormat(total, frac))
            llrs = q.llrs(y).ravel()[: coded.size]
            bers[total] = float(np.mean(code.decode_soft(llrs).data != data))
        # wider LLRs never hurt; 4-bit LLRs remain functional
        assert bers[8] <= bers[4] * 1.05 + 1e-5
        assert bers[4] < 0.05
