#!/usr/bin/env python3
"""ECC-triggered retraining — the paper's second trigger mechanism (ref [9]).

Instead of pilot symbols, an outer Hamming(7,4) code runs over the payload;
the number of bit flips the decoder corrects per frame is a free
channel-quality statistic ("the number of bit flips that are corrected by
the ECC can guide as performance metric ... and activate retraining",
paper §II-C, citing Schibisch et al. 2018).  A CRC-16 over each frame's
data gives an end-to-end frame-integrity check.

Scenario: a 10 dB link with a π/4 phase jump after 25 frames.  Healthy
corrected-flip rate ≈ the raw BER (~2e-3); after the jump it leaps above
1e-1, the EccFlipMonitor fires once, the demapper retrains over the live
channel, centroids are re-extracted, and frames pass CRC again.

Run:  python examples/ecc_triggered_retraining.py
"""

import numpy as np

from repro.autoencoder import ReceiverFinetuner, TrainingConfig
from repro.channels import AWGNChannel, CompositeChannel, TimeVaryingPhaseChannel
from repro.ecc import CRC16_CCITT, HammingCode, RandomInterleaver
from repro.experiments.cache import trained_ae_system
from repro.extraction import EccFlipMonitor, HybridDemapper
from repro.modulation.bits import bits_to_indices

SNR_DB = 10.0
SEED = 13
FRAMES = 60
JUMP_FRAME = 25
PAYLOAD_BITS = 1776                      # + 16 CRC bits = 1792 = 448 blocks of 4
DATA_BITS_PER_FRAME = PAYLOAD_BITS + 16


def main() -> None:
    system = trained_ae_system(SNR_DB, seed=SEED, steps=2500, copy=True)
    constellation = system.mapper.constellation()
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2

    code = HammingCode(3)
    blocks = DATA_BITS_PER_FRAME // code.k
    coded_bits_per_frame = blocks * code.n
    symbols_per_frame = coded_bits_per_frame // 4
    interleaver = RandomInterleaver(coded_bits_per_frame, rng=SEED)

    def phase(t: np.ndarray) -> np.ndarray:
        return np.where(t < JUMP_FRAME * symbols_per_frame, 0.0, np.pi / 4)

    channel = CompositeChannel([
        TimeVaryingPhaseChannel(phase),
        AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(SEED + 1)),
    ])
    monitor = EccFlipMonitor(threshold=0.02, window=2, cooldown=3)
    hybrid = HybridDemapper.extract(system.demapper, sigma2, method="lsq",
                                    fallback=constellation)

    rng = np.random.default_rng(SEED + 2)
    retrains = 0
    crc_history = []
    print("frame | corrected-flip rate | post-FEC data BER | CRC | event")
    print("------+---------------------+-------------------+-----+----------------------")
    for frame in range(FRAMES):
        payload = rng.integers(0, 2, size=PAYLOAD_BITS, dtype=np.int8)
        data = CRC16_CCITT.append(payload)          # payload + CRC-16
        coded = code.encode(data).ravel()
        tx_bits = interleaver.interleave(coded)
        tx_idx = bits_to_indices(tx_bits.reshape(-1, 4))
        received = channel.forward(constellation.points[tx_idx])

        rx_bits = hybrid.demap_bits(received).ravel()
        deinterleaved = interleaver.deinterleave(rx_bits)
        result = code.decode(deinterleaved)
        data_hat = result.data.ravel()

        flip_rate = result.corrected / coded.size
        data_ber = float(np.mean(data_hat != data))
        crc_ok = CRC16_CCITT.check(data_hat)
        crc_history.append(crc_ok)

        fired = monitor.observe_decode(result.corrected, coded.size)
        event = ""
        if fired:
            ReceiverFinetuner(
                system, TrainingConfig(steps=700, batch_size=512, lr=2e-3),
                constellation=constellation,
            ).run(channel, rng)
            hybrid = HybridDemapper.extract(system.demapper, sigma2, method="lsq",
                                            fallback=constellation)
            monitor.reset()
            retrains += 1
            event = "RETRAIN + RE-EXTRACT"
        if frame % 3 == 0 or fired:
            print(f"{frame:5d} | {flip_rate:19.4f} | {data_ber:17.5f} | "
                  f"{'ok ' if crc_ok else 'BAD'} | {event}")

    healthy_crc = np.mean(crc_history[:JUMP_FRAME])
    recovered_crc = np.mean(crc_history[-10:])
    print(f"\nretraining events        : {retrains} (expected: 1, at the phase jump)")
    print(f"CRC pass rate, healthy   : {healthy_crc:.0%}")
    print(f"CRC pass rate, recovered : {recovered_crc:.0%}")
    assert retrains >= 1


if __name__ == "__main__":
    main()
