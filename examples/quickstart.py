#!/usr/bin/env python3
"""Quickstart — the paper's three steps in ~60 lines.

1. **E2E training**: jointly train a 16-symbol mapper ANN and demapper ANN
   over an AWGN channel (SNR = Eb/N0 = 8 dB).
2. **Extraction**: sample the demapper's decision regions, extract one
   Voronoi centroid per symbol.
3. **Hybrid inference**: run the conventional max-log soft demapper on the
   extracted centroids and compare its BER against AE inference and
   conventional Gray-QAM demapping.

Expected output: all three receivers land on (about) the analytic Gray
16-QAM BER at 8 dB (~0.9e-2), demonstrating the paper's headline claim —
ANN-level communication performance at conventional-demapper cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AESystem,
    AWGNChannel,
    DemapperANN,
    E2ETrainer,
    HybridDemapper,
    MapperANN,
    Mapper,
    MaxLogDemapper,
    TrainingConfig,
    qam_constellation,
    simulate_ber,
)
from repro.utils.complexmath import complex_to_real2
from repro.utils.stats import gray_qam_ber_approx
from repro.utils.tables import format_table

SNR_DB = 8.0  # Eb/N0, the paper's convention
SEED = 2024


def main() -> None:
    rng = np.random.default_rng(SEED)

    # ---- step 1: end-to-end training over the AWGN channel model ----------
    mapper = MapperANN(16, init="qam", rng=rng)
    demapper = DemapperANN(bits_per_symbol=4, rng=rng)  # 2-16-16-16-4 MLP
    system = AESystem(mapper, demapper, AWGNChannel(SNR_DB, 4, rng=rng))
    history = E2ETrainer(system, TrainingConfig(steps=2500, batch_size=512)).run(rng)
    print(f"E2E training: BCE {history.initial_loss:.3f} -> {history.final_loss:.4f}")

    constellation = mapper.constellation()  # frozen transmit constellation
    sigma2 = system.channel.sigma2

    # ---- step 3: extract centroids, build the hybrid demapper -------------
    hybrid = HybridDemapper.extract(
        demapper, sigma2, method="lsq", fallback=constellation
    )
    print(f"extracted {hybrid.constellation.order} centroids "
          f"({hybrid.centroids.n_missing} filled from fallback)")

    # ---- measure all receivers --------------------------------------------
    n_symbols, max_errors = 1_000_000, 4000

    def measure(const, demap_fn, seed):
        ch = AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(seed))
        return simulate_ber(const, ch, demap_fn, n_symbols,
                            rng=seed + 1, max_errors=max_errors).ber

    qam = qam_constellation(16)
    conv = MaxLogDemapper(qam)
    ber_conv = measure(qam, lambda y: conv.demap_bits(y, sigma2), 10)
    ber_ae = measure(
        constellation,
        lambda y: (demapper.forward(complex_to_real2(y)) > 0).astype(np.int8),
        20,
    )
    ber_hybrid = measure(constellation, hybrid.demap_bits, 30)

    print()
    print(format_table(
        ["receiver", "BER @ 8 dB", "hardware cost (Table 2)"],
        [
            ["conventional max-log on Gray 16-QAM", ber_conv, "1 DSP / 1.1k LUT"],
            ["AE inference (demapper ANN)", ber_ae, "352 DSP / 11.3k LUT"],
            ["HYBRID: max-log on extracted centroids", ber_hybrid, "1 DSP / 1.1k LUT"],
            ["analytic Gray 16-QAM reference", float(gray_qam_ber_approx(SNR_DB)), "-"],
        ],
        float_fmt=".3e",
        title="Quickstart: communication performance of the three receivers",
    ))
    print("\nThe hybrid receiver keeps the AE's performance at ~1/350 the DSP cost.")


if __name__ == "__main__":
    main()
