#!/usr/bin/env python3
"""Adaptive phase tracking — the paper's closed loop on a drifting channel.

Scenario: an oscillator drift rotates the channel continuously (≈ π/4 every
150k symbols).  The receiver runs the cheap hybrid demapper; pilot symbols
in every frame feed a BER monitor; whenever the windowed pilot BER crosses
the threshold the demapper ANN is retrained over the live channel (the
paper's FPGA training design) and fresh centroids are extracted.  Note the
retraining traffic itself advances the channel clock — time passes while
the receiver adapts, exactly as on real hardware.

Expected output: a sawtooth payload-BER trace — degradation as the phase
drifts, sharp recovery at every RETRAIN event — and a final link that still
runs near the 8 dB baseline (~1e-2) after a cumulative rotation that would
have destroyed a static receiver (BER ≈ 0.3, paper Table 1).

Run:  python examples/adaptive_phase_tracking.py
"""

import numpy as np

from repro import AWGNChannel
from repro.autoencoder import TrainingConfig
from repro.channels import CompositeChannel, TimeVaryingPhaseChannel
from repro.experiments.cache import trained_ae_system
from repro.extraction import PilotBERMonitor
from repro.link import AdaptiveReceiver, AdaptiveReceiverConfig, FrameConfig

SNR_DB = 8.0
SEED = 7
DRIFT_RATE = (np.pi / 4) / 150_000  # radians per symbol


def main() -> None:
    base = trained_ae_system(SNR_DB, seed=SEED, steps=2500, copy=True)
    constellation = base.mapper.constellation()
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2

    frame_cfg = FrameConfig(pilot_symbols=128, payload_symbols=896)
    drift = TimeVaryingPhaseChannel(lambda t: DRIFT_RATE * t)
    channel = CompositeChannel([
        drift,
        AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(SEED + 1)),
    ])

    receiver = AdaptiveReceiver(
        base,
        constellation,
        sigma2,
        PilotBERMonitor(threshold=0.05, window=2, cooldown=2),
        AdaptiveReceiverConfig(
            frame=frame_cfg,
            retrain=TrainingConfig(steps=400, batch_size=256, lr=2e-3),
            extraction_method="lsq",
        ),
    )

    reports = receiver.run(channel, n_frames=160, rng=SEED + 2)

    print("frame | pilot BER | payload BER | phase so far | event")
    print("------+-----------+-------------+--------------+----------------------")
    for r in reports:
        if r.frame_index % 5 == 0 or r.retrained:
            bar = "#" * min(40, int(r.payload_ber * 150))
            event = "RETRAIN + RE-EXTRACT " if r.retrained else ""
            print(f"{r.frame_index:5d} | {r.pilot_ber:9.4f} | {r.payload_ber:11.4f} "
                  f"| {'':12s} | {event}{bar}")

    total_phase = DRIFT_RATE * drift.symbols_elapsed
    clean = np.mean([r.payload_ber for r in reports[:10]])
    final = np.mean([r.payload_ber for r in reports[-10:]])
    print(f"\ncumulative channel rotation     : {total_phase:.2f} rad "
          f"({total_phase / np.pi:.2f} pi)")
    print(f"payload BER, first 10 frames    : {clean:.4f}")
    print(f"payload BER, last 10 frames     : {final:.4f}")
    print(f"retraining events               : {receiver.retrain_count}")
    print("\nA static receiver after this rotation would sit at BER ~0.3 "
          "(paper Table 1 'before retraining').")
    assert receiver.retrain_count >= 2, "expected repeated retraining under drift"
    assert final < 0.08, "link should remain near the 8 dB baseline"


if __name__ == "__main__":
    main()
