#!/usr/bin/env python3
"""Multi-session serving with the control plane — the paper's receiver loop
at fleet scale, self-adapting, under session churn.

Sixteen live streams share one 16-QAM centroid demapper behind a
``ServingEngine``.  Each stream owns a pilot-BER monitor, its own EWMA σ²
estimate fed by in-loop pilot noise estimation, and a tiered adaptation
ladder; the engine coalesces pending frames *across sessions* into one
micro-batched multi-sigma kernel launch per round, schedules queues by
deficit round robin, and a ``WeightController`` steers each session's live
scheduler share from its queue-wait SLO.  Mid-run, the fleet churns and two
different impairments hit:

* sessions 0-1 take a **π/4 phase rotation + 3 dB SNR drop** — a *rigid*
  impairment: their monitors fire, the ladder answers with the cheap
  tracking tier (rigid centroid update on the engine thread, a handful of
  multiplies), pilot BER recovers immediately, **no retrain happens**, and
  the σ² loop settles on the new noise floor;
* sessions 2-3 take an **IQ-imbalance warp** — *non-rigid*: the tracking
  tier's rigid update cannot repair it, pilot BER stays degraded, the
  ladder escalates at the next trigger, and a retrain + re-extract job
  (paper steps 2-3: ``ReceiverFinetuner`` on the live channel, then
  centroid extraction) runs on the background worker; the finished hybrid
  demapper is swapped in atomically — the other sessions never stop
  streaming — and BER drops back to the healthy floor;
* **churn**: session 14 *drains* out at round 8 (graceful handover — every
  frame it accepted is still served, zero loss), session 15 is *hard*
  removed (queued frames dropped, accounted), and two newcomers join the
  live engine at round 12 and are served to completion.  Surviving
  sessions' timelines are bit-identical to a churn-free run — the
  determinism contract the churn test suite pins;
* **faults**: sessions 4-5 take the same non-rigid warp, but a
  ``FaultPlan`` sabotages their retrains — session 4's retrain *raises*
  every time, session 5's retrain *hangs* (self-aborting after 2 s).  The
  ``RetrainSupervisor`` retries each once with backoff, then opens the
  circuit breaker: both sessions end **DEGRADED** — every frame they
  accepted is still served on their last-good demapper, no exception ever
  reaches the engine loop, and the rest of the fleet never notices.

Queue-wait and service-time histograms (simulated symbol clock), the
fleet-size timeline, and any SLO-driven weight boosts show what churn and
coalescing cost in tail latency.

The whole run is **fully observed**: a ``Tracer`` records every frame's
lifecycle and every round phase on the symbol clock, a ``RoundProfiler``
times the engine's stages, and a ``MetricsRegistry`` exposes every
counter — all passively (attaching them changes no output bit).  At the
end the run is exported (``obs_report.export_run``: JSON run document +
Chrome ``trace_event`` file) and the phase/failure/trace sections of the
text dashboard are rendered.

Run:  python examples/serving_multisession.py        (~½ min: 2 retrains)
"""

import os
import tempfile
import time

import numpy as np

from repro.channels import AWGNChannel, sigma2_from_snr
from repro.channels.factories import (
    AWGNFactory,
    CompositeFactory,
    IQImbalanceFactory,
    PhaseOffsetFactory,
)
from repro.autoencoder import TrainingConfig
from repro.experiments.cache import trained_ae_system
from repro.extraction import HybridDemapper, PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.serving import (
    DEGRADED,
    AnnRetrainPolicy,
    DemapperSession,
    EngineConfig,
    FaultPlan,
    MetricsRegistry,
    RetrainSupervisor,
    RoundProfiler,
    ServingEngine,
    SessionConfig,
    SessionPlan,
    SteadyChannel,
    SteppedChannel,
    Tracer,
    WeightController,
    generate_traffic,
    run_churn_load,
)
from repro.serving.obs_report import export_run, render_dashboard

SNR_DB = 10.0
N_SESSIONS = 16
N_NEWCOMERS = 2
N_FRAMES = 24
JUMP_SEQ = 10          # frame index at which the impairments hit
ROTATED = (0, 1)       # rigid impairment: tracking tier handles it
WARPED = (2, 3)        # non-rigid warp: escalates to retrain
FAULT_FAILED = 4       # same warp, but every retrain raises -> DEGRADED
FAULT_HUNG = 5         # same warp, but every retrain hangs -> DEGRADED
DRAINED = 14           # graceful handover: drains out at LEAVE_ROUND
HARD_REMOVED = 15      # hard removal: queued frames dropped
LEAVE_ROUND = 8
JOIN_ROUND = 12
OFFSET = np.pi / 4
FRAME = FrameConfig(pilot_symbols=64, payload_symbols=448)
SEED = 7


def main() -> None:
    system = trained_ae_system(SNR_DB, seed=SEED, steps=2500, copy=True)
    constellation = system.mapper.constellation()
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2
    hybrid = HybridDemapper.extract(
        system.demapper, sigma2, method="lsq", fallback=constellation
    )

    clean = AWGNFactory(SNR_DB, 4)
    rotated = CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(SNR_DB - 3.0, 4)))
    warped = CompositeFactory((IQImbalanceFactory(4.0, 0.5), AWGNFactory(SNR_DB, 4)))

    # Chaos injection for the two faulted sessions: s004's retrain raises
    # on every invocation, s005's hangs (self-aborting after 2 s so the
    # blocked worker thread frees itself; the supervisor records the hang).
    fault_plan = FaultPlan(
        seed=SEED,
        fail_sessions=(f"s{FAULT_FAILED:03d}",),
        hang_sessions=(f"s{FAULT_HUNG:03d}",),
        blocking_hangs=True,
        hang_timeout=2.0,
    )

    # Warped sessions retrain against their *live* channel.  Each session
    # needs its own mutable ANN copy — retraining writes the weights.  The
    # faulted sessions get the same real policy, wrapped by the fault plan
    # (the inner policy never actually runs — the fault fires first).
    def retrain_policy(i):
        if i not in ROTATED + WARPED + (FAULT_FAILED, FAULT_HUNG):
            return None
        own_system = trained_ae_system(SNR_DB, seed=SEED, steps=2500, copy=True)
        policy = AnnRetrainPolicy(
            system=own_system,
            channel_factory=rotated if i in ROTATED else warped,
            sigma2=sigma2,
            constellation=constellation,
            training=TrainingConfig(steps=1200, batch_size=512, lr=2e-3),
        )
        if i in (FAULT_FAILED, FAULT_HUNG):
            policy = fault_plan.wrap_retrain(f"s{i:03d}", policy)
        return policy

    config = SessionConfig(
        frame=FRAME,
        queue_depth=4,
        sigma2_alpha=0.5,       # in-loop pilot σ² estimation (EWMA)
        tracking=True,          # cheap rigid tier before any retrain
        track_attempts=1,       # persistence escalates the 2nd trigger
        track_residual=4.0,     # lenient rigid check: let the ladder's
                                # persistence rule drive escalation
    )
    # One full round of the live fleet advances the symbol clock by
    # fleet × frame symbols, so a healthy queued frame waits ~1-2 rounds.
    # The SLO sits at ~4 rounds: steady streaming meets it comfortably and
    # only a session whose frames aged behind a retrain pause gets boosted.
    slo_ticks = 4 * (N_SESSIONS + N_NEWCOMERS) * FRAME.total_symbols
    engine = ServingEngine(config=EngineConfig(
        max_batch=N_SESSIONS + N_NEWCOMERS,
        retrain_workers=2,
        weight_controller=WeightController(
            slo=slo_ticks, interval=2, raise_factor=2.0, decay=0.25
        ),
        # one retry with backoff, then the circuit breaker opens and the
        # faulted sessions serve out on their last-good demapper
        supervisor=RetrainSupervisor(max_failures=2, backoff_base=2),
        # full observability, attached for the whole run: frame-lifecycle
        # tracing + per-stage profiling — passive, no output bit changes
        tracer=Tracer(),
        profiler=RoundProfiler(),
    ))
    engine.register_metrics(MetricsRegistry())

    master = np.random.default_rng(SEED)
    plans = []
    sessions = []
    for i in range(N_SESSIONS):
        (session_rng,) = master.spawn(1)
        (traffic_rng,) = master.spawn(1)
        if i in ROTATED:
            chan = SteppedChannel(clean, rotated, step_seq=JUMP_SEQ)
        elif i in WARPED + (FAULT_FAILED, FAULT_HUNG):
            chan = SteppedChannel(clean, warped, step_seq=JUMP_SEQ)
        else:
            chan = SteadyChannel(clean)
        session = DemapperSession(
            f"s{i:03d}", hybrid,
            PilotBERMonitor(0.05, window=2, cooldown=2),
            config=config, retrain=retrain_policy(i), rng=session_rng,
        )
        sessions.append(session)
        plans.append(
            SessionPlan(
                session,
                generate_traffic(constellation, FRAME, N_FRAMES, chan, traffic_rng),
                leave_round=LEAVE_ROUND if i in (DRAINED, HARD_REMOVED) else None,
                drain=(i != HARD_REMOVED),
            )
        )
    newcomers = []
    for j in range(N_NEWCOMERS):
        (session_rng,) = master.spawn(1)
        (traffic_rng,) = master.spawn(1)
        session = DemapperSession(
            f"n{j:03d}", hybrid,
            PilotBERMonitor(0.05, window=2, cooldown=2),
            config=config, rng=session_rng,
        )
        newcomers.append(session)
        plans.append(
            SessionPlan(
                session,
                generate_traffic(constellation, FRAME, 10, SteadyChannel(clean),
                                 traffic_rng),
                join_round=JOIN_ROUND,
            )
        )

    print(f"serving {N_SESSIONS} sessions x {N_FRAMES} frames "
          f"({FRAME.total_symbols} symbols/frame), impairments at frame {JUMP_SEQ}: "
          f"rotation+SNR-drop on {ROTATED}, IQ warp on {WARPED}; faults: "
          f"s{FAULT_FAILED:03d} retrain raises / s{FAULT_HUNG:03d} retrain hangs; "
          f"churn: s{DRAINED:03d} drains / s{HARD_REMOVED:03d} hard-removed at "
          f"round {LEAVE_ROUND}, {N_NEWCOMERS} newcomers join at round {JOIN_ROUND}")
    t0 = time.perf_counter()
    with engine:
        stats = run_churn_load(engine, plans, max_rounds=10_000)
    elapsed = time.perf_counter() - t0

    print(f"\nengine: {stats.frames_served} frames / {stats.symbols_served} symbols "
          f"in {elapsed:.1f}s ({stats.symbols_served / elapsed / 1e3:.0f} ksym/s wall, "
          f"retrains included)")
    print(f"batch occupancy: mean {stats.mean_occupancy:.1f} "
          f"histogram {stats.snapshot()['occupancy']}")
    print(f"adaptation: {stats.tracks} tracking updates, "
          f"{stats.retrains_started} retrains started / "
          f"{stats.retrains_completed} completed")
    print(f"faults: {stats.retrain_failures} retrain failures "
          f"({stats.retrains_hung} hung, {stats.retrains_retried} retried) -> "
          f"{stats.sessions_degraded} sessions degraded; log: "
          + "; ".join(f"r{r.round} {r.session_id} {r.kind}/{r.action}"
                      for r in stats.failure_log))
    print(f"churn: {stats.joins} joins / {stats.leaves} leaves "
          f"({stats.drains_started} drains, {stats.frames_dropped} frames dropped "
          f"by hard removal); fleet size "
          f"{' -> '.join(str(n) for _, n in stats.fleet_timeline)}")
    qw, st = stats.queue_wait.snapshot(), stats.service_time.snapshot()
    print(f"latency (symbol ticks): queue-wait mean {qw['mean']:.0f} "
          f"p50 {qw['p50']} p99 {qw['p99']}; "
          f"service mean {st['mean']:.0f} p99 {st['p99']}")
    boosts = {
        s.session_id: s.stats.weight_timeline
        for s in sessions + newcomers if s.stats.weight_timeline
    }
    if boosts:
        print("SLO weight boosts: " + "; ".join(
            f"{sid} peaked x{max(w for _, w in tl):.0f}" for sid, tl in boosts.items()))
    print()

    print("session  tiers@frame              pilot BER (healthy | degraded | recovered)  sigma2")
    for i, s in enumerate(sessions):
        traj = np.array(s.stats.pilot_ber_trajectory)
        s2 = s.stats.sigma2_trajectory[-1]
        if i in (DRAINED, HARD_REMOVED):
            kind = "drained" if i == DRAINED else "removed"
            print(f"{s.session_id}     {kind + ' @' + str(LEAVE_ROUND):<24} "
                  f"{traj.mean():.4f} ({s.stats.frames_served} served, "
                  f"{s.stats.frames_dropped} dropped)")
            continue
        healthy = traj[:JUMP_SEQ].mean()
        if i in (FAULT_FAILED, FAULT_HUNG):
            kind = "raises" if i == FAULT_FAILED else "hangs"
            print(f"{s.session_id}     {'retrain ' + kind + ' -> ' + s.health:<24} "
                  f"{healthy:.4f} | {traj[JUMP_SEQ:].mean():.4f} | (no recovery: "
                  f"{s.stats.retrain_failures} failed retrains, "
                  f"{s.stats.frames_served} served on last-good demapper)")
            continue
        if i in ROTATED + WARPED:
            t = s.stats.trigger_seqs[0]
            degraded = traj[JUMP_SEQ : t + 1].mean()
            recovered = traj[t + 1 :].mean()
            tiers = ",".join(f"{tier}@{seq}" for seq, tier in s.stats.tier_timeline)
            print(f"{s.session_id}     {tiers:<24} {healthy:.4f} | {degraded:.4f} | "
                  f"{recovered:.4f}              {s2:.4f}")
        else:
            print(f"{s.session_id}     {'-':<24} {healthy:.4f} | {'-':>6} | "
                  f"{traj[JUMP_SEQ:].mean():.4f}              {s2:.4f}")
    for s in newcomers:
        traj = np.array(s.stats.pilot_ber_trajectory)
        print(f"{s.session_id}     {'joined @' + str(JOIN_ROUND):<24} "
              f"{traj.mean():.4f} ({s.stats.frames_served} served)")

    rot, warp = [sessions[i] for i in ROTATED], [sessions[i] for i in WARPED]
    assert all(s.stats.retrains == 0 and s.stats.tracks >= 1 for s in rot), \
        "rigid impairments must be absorbed by the tracking tier alone"
    assert all(s.stats.retrains == 1 for s in warp), \
        "non-rigid warps must escalate to exactly one retrain"
    assert all(
        np.mean(s.stats.pilot_ber_trajectory[s.stats.tier_timeline[-1][0] + 2 :]) < 0.05
        for s in rot + warp
    ), "adapted sessions should recover to the healthy floor"
    # the σ² loop followed the SNR drop on the rotated sessions
    dropped_floor = sigma2_from_snr(SNR_DB - 3.0, 4)
    assert all(
        abs(s.stats.sigma2_trajectory[-1] - dropped_floor) < 0.3 * dropped_floor
        for s in rot
    ), "in-loop sigma^2 should settle on the post-drop noise floor"
    # churn accounting: the drained session lost nothing it accepted, the
    # hard-removed one has every accepted frame served-or-dropped, and the
    # newcomers were served to completion on the live engine
    assert sessions[DRAINED].stats.frames_dropped == 0
    assert sessions[DRAINED].stats.frames_served >= LEAVE_ROUND
    assert sessions[HARD_REMOVED].stats.frames_dropped > 0
    assert all(s.stats.frames_served == 10 for s in newcomers)
    assert stats.joins == N_SESSIONS + N_NEWCOMERS and stats.leaves == 2
    assert len(engine.sessions) == N_SESSIONS - 2 + N_NEWCOMERS
    # graceful degradation: the faulted sessions tripped their breakers
    # (one retry each, then open) yet served every frame they accepted on
    # the last-good demapper — and no exception ever escaped the engine
    faulted = [sessions[FAULT_FAILED], sessions[FAULT_HUNG]]
    assert all(s.health == DEGRADED for s in faulted), \
        "faulted sessions must end DEGRADED (breaker open)"
    assert all(s.stats.retrains == 0 for s in faulted), \
        "no sabotaged retrain may ever install"
    assert all(s.stats.frames_served == N_FRAMES for s in faulted), \
        "degraded sessions must keep serving on the last-good demapper"
    assert stats.sessions_degraded == 2
    assert stats.retrains_hung >= 1, "the hung retrain must be recorded"
    assert stats.retrain_failures == sum(s.stats.retrain_failures for s in faulted)
    print("\nOK: rotations tracked (0 retrains), warps retrained once, all "
          "recovered; faulted sessions degraded gracefully (served "
          "everything, breaker open); drain lost nothing, hard removal "
          "accounted, newcomers served.")

    # -- observability: export the traced run and render the dashboard ----
    # drained/removed sessions have left engine.sessions, so pass the full
    # roster explicitly — their stats objects outlive the registration
    outdir = tempfile.mkdtemp(prefix="serving_obs_")
    run_path = os.path.join(outdir, "run.json")
    trace_path = os.path.join(outdir, "trace_chrome.json")
    run = export_run(engine, sessions=sessions + newcomers, path=run_path,
                     indent=1)
    with open(trace_path, "w", encoding="utf-8") as fh:
        fh.write(engine.tracer.chrome_json())
    print()
    print(render_dashboard(run, sections=("phases", "failures", "trace")))
    prom_lines = len(engine.registry.to_prometheus().splitlines())
    print(f"exported: {run_path} ({len(run['trace']['events'])} trace events, "
          f"{prom_lines} prometheus lines)")
    print(f"  full dashboard:  python -m repro.serving.obs_report {run_path}")
    print(f"  chrome trace:    {trace_path}  (chrome://tracing / Perfetto)")
    assert run["trace"]["dropped"] == 0, "ring must not evict on a run this short"
    assert "serving_engine_frames_served" in engine.registry.to_prometheus()


if __name__ == "__main__":
    main()
