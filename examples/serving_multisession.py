#!/usr/bin/env python3
"""Multi-session serving — the paper's receiver loop at fleet scale.

Sixteen live streams share one 16-QAM centroid demapper behind a
``ServingEngine``.  Each stream owns a pilot-BER monitor and its own σ²
estimate; the engine coalesces pending frames *across sessions* into one
micro-batched multi-sigma kernel launch per round.  Mid-run, a quarter of
the fleet is hit by a π/4 phase rotation (a cable re-route, an oscillator
glitch — the Table 1 scenario as live traffic):

* their monitors fire within a frame or two;
* each affected session enqueues a retrain + re-extract job on the
  background worker (paper steps 2-3: ``ReceiverFinetuner`` on the live
  channel, then centroid extraction from the retrained ANN);
* the finished hybrid demapper is swapped in atomically — the other
  sessions never stop streaming — and the pilot BER drops back to the
  healthy floor.

Run:  python examples/serving_multisession.py        (~½ min: 4 retrains)
"""

import time

import numpy as np

from repro.channels import AWGNChannel, sigma2_from_snr
from repro.channels.factories import AWGNFactory, CompositeFactory, PhaseOffsetFactory
from repro.experiments.cache import trained_ae_system
from repro.extraction import HybridDemapper, PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.serving import (
    AnnRetrainPolicy,
    ServingEngine,
    SessionConfig,
    SteadyChannel,
    SteppedChannel,
    build_fleet,
    generate_traffic,
    run_load,
)

SNR_DB = 10.0
N_SESSIONS = 16
N_FRAMES = 24
JUMP_SEQ = 10          # frame index at which the impairment hits
AFFECTED = 4           # sessions 0..3 get the rotated channel
OFFSET = np.pi / 4
FRAME = FrameConfig(pilot_symbols=64, payload_symbols=448)
SEED = 7


def main() -> None:
    system = trained_ae_system(SNR_DB, seed=SEED, steps=2500, copy=True)
    constellation = system.mapper.constellation()
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2
    hybrid = HybridDemapper.extract(
        system.demapper, sigma2, method="lsq", fallback=constellation
    )

    rotated = CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(SNR_DB, 4)))
    clean = AWGNFactory(SNR_DB, 4)

    # Affected sessions retrain against their *live* (rotated) channel.  Each
    # session needs its own mutable ANN copy — retraining writes the weights.
    def retrain_policy(i):
        if i >= AFFECTED:
            return None
        own_system = trained_ae_system(SNR_DB, seed=SEED, steps=2500, copy=True)
        return AnnRetrainPolicy(
            system=own_system,
            channel_factory=rotated,
            sigma2=sigma2,
            constellation=constellation,
        )

    engine = ServingEngine(max_batch=N_SESSIONS, retrain_workers=2)
    sessions = build_fleet(
        engine,
        N_SESSIONS,
        hybrid,
        monitor_factory=lambda: PilotBERMonitor(0.1, window=2, cooldown=2),
        config=SessionConfig(frame=FRAME, queue_depth=4),
        retrain_factory=retrain_policy,
        seed=SEED,
    )

    rng = np.random.default_rng(SEED)
    traffic = {}
    for i, s in enumerate(sessions):
        (srng,) = rng.spawn(1)
        chan = (
            SteppedChannel(clean, rotated, step_seq=JUMP_SEQ)
            if i < AFFECTED
            else SteadyChannel(clean)
        )
        traffic[s.session_id] = generate_traffic(constellation, FRAME, N_FRAMES, chan, srng)

    print(f"serving {N_SESSIONS} sessions x {N_FRAMES} frames "
          f"({FRAME.total_symbols} symbols/frame), jump at frame {JUMP_SEQ} "
          f"for sessions 0..{AFFECTED - 1}")
    t0 = time.perf_counter()
    with engine:
        stats = run_load(engine, traffic)
    elapsed = time.perf_counter() - t0

    print(f"\nengine: {stats.frames_served} frames / {stats.symbols_served} symbols "
          f"in {elapsed:.1f}s ({stats.symbols_served / elapsed / 1e3:.0f} ksym/s wall, "
          f"retrains included)")
    print(f"batch occupancy: mean {stats.mean_occupancy:.1f} "
          f"histogram {stats.snapshot()['occupancy']}")
    print(f"retrains: {stats.retrains_started} started, "
          f"{stats.retrains_completed} completed\n")

    print("session  triggers@frame  retrains  pilot BER (healthy | degraded | recovered)")
    for i, s in enumerate(sessions):
        traj = np.array(s.stats.pilot_ber_trajectory)
        healthy = traj[:JUMP_SEQ].mean()
        if i < AFFECTED:
            t = s.stats.trigger_seqs[0]
            degraded = traj[JUMP_SEQ : t + 1].mean()
            recovered = traj[t + 1 :].mean()
            print(f"{s.session_id}     {s.stats.trigger_seqs!s:<14}  {s.stats.retrains:<8}"
                  f"  {healthy:.4f} | {degraded:.4f} | {recovered:.4f}")
        else:
            print(f"{s.session_id}     {'-':<14}  {s.stats.retrains:<8}"
                  f"  {healthy:.4f} | {'-':>6} | {traj[JUMP_SEQ:].mean():.4f}")

    affected = sessions[:AFFECTED]
    assert all(s.stats.retrains == 1 for s in affected)
    assert all(
        np.mean(s.stats.pilot_ber_trajectory[s.stats.trigger_seqs[0] + 2 :]) < 0.05
        for s in affected
    ), "retrained sessions should recover to the healthy floor"
    print("\nOK: all affected sessions retrained once and recovered.")


if __name__ == "__main__":
    main()
