#!/usr/bin/env python3
"""FPGA deployment study — regenerate Table 2 and explore the design space.

Four parts:

1. **Table 2** — the paper's three ZU3EG designs (soft demapper,
   AE-inference, AE-training) from the calibrated architectural model,
   printed next to the published numbers.
2. **Quantisation** — a trained demapper pushed through the bit-accurate
   integer datapath at several weight widths; BER per width (how narrow can
   the hardware go before communication performance suffers?).
3. **DOP sweep** — the paper's "flexible adjustment of the degree of
   parallelism": soft-demapper distance units vs throughput/area/power.
4. **Gbps replication** — fill the ZU3EG with soft-demapper cores and report
   aggregate throughput (the paper's parallel-instantiation argument).

Run:  python examples/fpga_deployment_report.py
"""

import numpy as np

from repro.channels import AWGNChannel
from repro.experiments.cache import trained_ae_system
from repro.experiments.table2_fpga import Table2Config, run as run_table2
from repro.fpga import (
    FixedPointFormat,
    QuantizedDemapper,
    ZU3EG,
    build_soft_demapper_core,
    replicate_for_throughput,
)
from repro.modulation import Mapper, random_indices
from repro.utils.tables import format_table

SNR_DB = 8.0
SEED = 11


def part1_table2() -> None:
    print(run_table2(Table2Config()).to_table())
    print()


def part2_quantization() -> None:
    system = trained_ae_system(SNR_DB, seed=SEED, steps=2500)
    const = system.mapper.constellation()
    rng = np.random.default_rng(SEED)
    idx = random_indices(rng, 300_000, 16)
    received = AWGNChannel(SNR_DB, 4, rng=rng)(Mapper(const)(idx))
    truth = const.bit_matrix[idx]

    from repro.utils.complexmath import complex_to_real2

    y2 = complex_to_real2(received)
    rows = [["float64 (software)", "-", float(np.mean(system.demapper.hard_bits(y2) != truth))]]
    for bits in (4, 6, 8, 12, 16):
        q = QuantizedDemapper(
            system.demapper,
            weight_format=FixedPointFormat(bits, max(0, bits - 2)),
            activation_format=FixedPointFormat(bits + 4, max(0, bits - 2)),
        )
        ber = float(np.mean(q.hard_bits(y2) != truth))
        fmts = ", ".join(w for w, _ in q.layer_formats)
        rows.append([f"int{bits} datapath", fmts, ber])
    print(format_table(
        ["datapath", "per-layer weight formats", "BER @ 8 dB"],
        rows, float_fmt=".3e",
        title="Quantisation ablation: integer demapper datapath",
    ))
    print()


def part3_dop_sweep() -> None:
    rows = []
    for units in (1, 2, 4, 8, 16):
        pipe, rep = build_soft_demapper_core(distance_units=units)
        rows.append([
            units, pipe.ii, rep.latency_s, rep.throughput_per_s,
            round(rep.resources.lut), rep.power_w, rep.energy_per_symbol_j,
        ])
    print(format_table(
        ["distance units (DOP)", "II [cyc]", "latency [s]", "tput [sym/s]",
         "LUT", "power [W]", "energy [J/sym]"],
        rows, float_fmt=".3g",
        title="DOP sweep: soft-demapper core folding (paper SIII-B 'trade-off between latency and power')",
    ))
    print()


def part4_replication() -> None:
    _, rep = build_soft_demapper_core()
    for margin in (0.0, 0.1, 0.25):
        plan = replicate_for_throughput(rep, bits_per_symbol=4, device=ZU3EG, margin=margin)
        print(
            f"margin {margin:4.0%}: {plan.instances:3d} cores -> "
            f"{plan.aggregate_symbols_per_s / 1e9:.2f} Gsym/s = "
            f"{plan.aggregate_bits_per_s / 1e9:5.1f} Gbit/s @ {plan.total_power_w:.2f} W "
            f"(LUT util {plan.utilization['lut']:.0%})"
        )
    print("\npaper §III-D: parallel instantiation 'approaches a throughput in the "
          "order of Gbps, which could not be accomplished with the AE-inference'.")


def main() -> None:
    part1_table2()
    part2_quantization()
    part3_dop_sweep()
    part4_replication()


if __name__ == "__main__":
    main()
