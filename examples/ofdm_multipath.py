#!/usr/bin/env python3
"""Hybrid demapping per OFDM subcarrier over a multipath channel.

The paper evaluates a single-carrier flat link; real deployments face
frequency-selective multipath.  Cyclic-prefix OFDM turns that channel into
independent flat subchannels, so the *same* extracted-centroid demapper
applies per subcarrier after a one-tap equaliser — with the per-subcarrier
effective noise variance feeding the max-log LLR scale.

This example builds a 64-subcarrier link over an 8-tap Rayleigh channel,
estimates the subcarrier gains from pilots, and compares three receivers:

* conventional max-log on Gray 16-QAM (per subcarrier),
* hybrid (extracted centroids) per subcarrier,
* a "no equaliser" strawman showing the channel really is hostile.

Run:  python examples/ofdm_multipath.py
"""

import numpy as np

from repro.channels import AWGNChannel
from repro.channels.awgn import sigma2_from_snr
from repro.experiments.cache import trained_ae_system
from repro.extraction import HybridDemapper
from repro.link import (
    MultipathChannel,
    OFDMConfig,
    OFDMReceiver,
    ofdm_demodulate,
    ofdm_modulate,
    subcarrier_gains,
)
from repro.modulation import MaxLogDemapper, qam_constellation, random_indices
from repro.utils.tables import format_table

SNR_DB = 16.0
SEED = 21
CFG = OFDMConfig(n_subcarriers=64, cp_length=16)
N_FRAMES = 200


def main() -> None:
    rng = np.random.default_rng(SEED)
    sigma2 = sigma2_from_snr(SNR_DB, 4)
    taps = MultipathChannel.exponential_profile(8, decay=0.6, rng=SEED + 1)
    h_true = subcarrier_gains(taps, CFG.n_subcarriers)
    print(f"channel: 8 Rayleigh taps, subcarrier |H| range "
          f"{np.abs(h_true).min():.2f} .. {np.abs(h_true).max():.2f} "
          f"(deep fades are {20*np.log10(np.abs(h_true).min()):.1f} dB down)\n")

    # the paper's receiver: AE trained on a flat channel, centroids extracted
    system = trained_ae_system(8.0, seed=SEED, steps=2500)
    const = system.mapper.constellation()
    hybrid = HybridDemapper.extract(system.demapper, AWGNChannel(8.0, 4).sigma2,
                                    method="lsq", fallback=const)

    qam = qam_constellation(16)
    receivers = {
        "conventional max-log (Gray QAM)": (qam, MaxLogDemapper(qam).llrs),
        "hybrid (extracted centroids)": (const, lambda y, s2: hybrid.with_sigma2(s2).llrs(y)),
    }

    rows = []
    for name, (constellation, llr_fn) in receivers.items():
        ch = MultipathChannel(taps, sigma2=sigma2, rng=SEED + 2)
        receiver = OFDMReceiver(CFG, llr_fn, sigma2)
        pilot_idx = random_indices(rng, 4 * CFG.n_subcarriers, 16)
        pilots = constellation.points[pilot_idx].reshape(4, -1)
        receiver.estimate(
            pilots, ofdm_demodulate(ch.forward(ofdm_modulate(pilots, CFG)), CFG)
        )
        idx = random_indices(rng, N_FRAMES * CFG.n_subcarriers, 16)
        tx = constellation.points[idx].reshape(N_FRAMES, -1)
        rx = ofdm_demodulate(ch.forward(ofdm_modulate(tx, CFG)), CFG)
        ber = float(np.mean(receiver.demap_bits(rx) != constellation.bit_matrix[idx]))
        rows.append([name, ber])

    # strawman: no equalisation at all
    ch = MultipathChannel(taps, sigma2=sigma2, rng=SEED + 2)
    idx = random_indices(rng, N_FRAMES * CFG.n_subcarriers, 16)
    tx = qam.points[idx].reshape(N_FRAMES, -1)
    rx = ofdm_demodulate(ch.forward(ofdm_modulate(tx, CFG)), CFG)
    ml = MaxLogDemapper(qam)
    ber_raw = float(np.mean(
        (ml.llrs(rx.ravel(), sigma2) > 0).astype(np.int8) != qam.bit_matrix[idx]
    ))
    rows.append(["no equalisation (strawman)", ber_raw])

    print(format_table(
        ["receiver (per subcarrier)", f"BER @ {SNR_DB:g} dB Eb/N0"],
        rows, float_fmt=".3e",
        title=f"OFDM {CFG.n_subcarriers}-subcarrier link over 8-tap multipath",
    ))
    print("\nThe flat-channel hybrid demapper transfers unchanged to each "
          "subcarrier;\ndeep fades dominate the residual BER for both receivers "
          "(an outer FEC would close that gap — see repro.ecc).")


if __name__ == "__main__":
    main()
