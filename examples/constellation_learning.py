#!/usr/bin/env python3
"""Constellation learning across SNRs and channels (paper §II-A background).

The E2E-trained mapper "is able to learn non-uniform constellations which
increase the bitwise MI as compared to conventional QAM constellations for
the underlying channel model" [Cammerer et al. 2020].  This example:

1. trains the AE from *random* initialisation at several SNRs over AWGN and
   prints the learned constellations (ASCII) with their bitwise mutual
   information vs Gray 16-QAM;
2. trains over a saturating Rapp power amplifier + AWGN, where the learned
   constellation visibly backs off from the saturation region.

Run:  python examples/constellation_learning.py
"""

import numpy as np

from repro.autoencoder import (
    AESystem,
    DemapperANN,
    E2ETrainer,
    MapperANN,
    TrainingConfig,
    bitwise_mutual_information,
)
from repro.channels import AWGNChannel, CompositeChannel, RappPAChannel
from repro.modulation import MaxLogDemapper, qam_constellation
from repro.modulation.bits import indices_to_bits
from repro.modulation.demapper import llrs_to_probabilities
from repro.utils.ascii_plot import scatter_plot
from repro.utils.tables import format_table

SEED = 3


def qam_mi(snr_db: float, n: int = 60_000) -> float:
    """Bitwise MI of Gray 16-QAM with exact max-log demapping (baseline)."""
    rng = np.random.default_rng(SEED)
    qam = qam_constellation(16)
    ch = AWGNChannel(snr_db, 4, rng=rng)
    idx = rng.integers(0, 16, size=n)
    llrs = MaxLogDemapper(qam).llrs(ch(qam.points[idx]), ch.sigma2)
    return bitwise_mutual_information(llrs_to_probabilities(llrs), qam.bit_matrix[idx])


def train_ae(channel, steps: int = 4000, seed: int = SEED):
    rng = np.random.default_rng(seed)
    mapper = MapperANN(16, init="random", rng=rng)  # paper's from-scratch setting
    demapper = DemapperANN(4, rng=rng)
    system = AESystem(mapper, demapper, channel)
    E2ETrainer(system, TrainingConfig(steps=steps, batch_size=1024, lr=3e-3)).run(rng)
    return system


def ae_mi(system, n: int = 60_000) -> float:
    rng = np.random.default_rng(SEED + 1)
    idx = rng.integers(0, 16, size=n)
    received = system.transmit(idx)
    probs = llrs_to_probabilities(system.receive_logits(received))
    return bitwise_mutual_information(probs, indices_to_bits(idx, 4))


def main() -> None:
    rows = []
    print("=== AWGN: learned constellations per SNR (random init) ===\n")
    for snr in (0.0, 6.0, 12.0):
        system = train_ae(AWGNChannel(snr, 4, rng=np.random.default_rng(SEED)))
        const = system.mapper.constellation()
        print(scatter_plot(const.points, size=30,
                           labels=np.arange(16),
                           title=f"learned constellation @ {snr:g} dB"))
        print()
        rows.append([snr, ae_mi(system), qam_mi(snr)])
    print(format_table(
        ["SNR [dB]", "AE bitwise MI [bit/use]", "Gray 16-QAM MI [bit/use]"],
        rows, float_fmt=".3f",
        title="Bitwise mutual information: learned vs conventional",
    ))

    print("\n=== Nonlinear PA (Rapp, saturation at |x| = 1.1) + AWGN @ 12 dB ===\n")
    pa_channel = CompositeChannel([
        RappPAChannel(a_sat=1.1, p=2.0),
        AWGNChannel(12.0, 4, rng=np.random.default_rng(SEED)),
    ])
    system = train_ae(pa_channel, steps=5000)
    const = system.mapper.constellation()
    print(scatter_plot(const.points, size=30, title="learned constellation under PA saturation"))
    peak = np.abs(const.points).max()
    print(f"\npeak learned amplitude: {peak:.3f} (QAM peak would be 1.342; "
          f"the mapper backs off from the PA's compression region)")
    print(f"AE bitwise MI over the PA channel: {ae_mi(system):.3f} bit/use")


if __name__ == "__main__":
    main()
